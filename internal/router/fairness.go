package router

import "sort"

// Deficit round-robin over per-tenant queues: each tenant earns `weight`
// credits per rotation and spends one per dispatched request (every request
// has unit cost in this tier — the shards account real latency and energy),
// so under saturating load tenants are served in proportion to their
// weights, while an idle tenant's unused credit evaporates rather than
// accruing into a burst.

// tenantQueue is one tenant's FIFO plus its DRR accounting.
type tenantQueue struct {
	name    string
	weight  int
	deficit int

	// depth, when positive, overrides the router's default per-tenant queue
	// bound — the capacity planner's admission-depth actuator.
	depth int
	// maxVWaitS, when positive, is the tenant's admission gate: an
	// arrival-stamped request is shed when the estimated backlog exceeds it.
	// Ordering the bounds by class (tightest for best-effort, loosest for
	// gold) makes overload shed strictly lowest class first.
	maxVWaitS float64

	// FIFO as a head-indexed slice: pops advance head, a fully drained queue
	// resets to reuse its backing array, so steady-state traffic stops
	// allocating once the array has grown to the working set.
	q    []*rreq
	head int

	// Admission accounting (guarded by the router's queue lock).
	admitted uint64
	shed     uint64
}

func (tq *tenantQueue) size() int { return len(tq.q) - tq.head }

func (tq *tenantQueue) push(r *rreq) { tq.q = append(tq.q, r) }

func (tq *tenantQueue) pop() *rreq {
	r := tq.q[tq.head]
	tq.q[tq.head] = nil
	tq.head++
	if tq.head == len(tq.q) {
		tq.q = tq.q[:0]
		tq.head = 0
	}
	return r
}

// popOldest evicts the head request (the ShedOldest victim).
func (tq *tenantQueue) popOldest() *rreq { return tq.pop() }

// popNewest evicts the tail request (the ShedNewest victim when a planner
// shrinks the queue under load: the youngest arrivals lose their slots, the
// oldest keep their place in line).
func (tq *tenantQueue) popNewest() *rreq {
	r := tq.q[len(tq.q)-1]
	tq.q[len(tq.q)-1] = nil
	tq.q = tq.q[:len(tq.q)-1]
	if tq.head == len(tq.q) {
		tq.q = tq.q[:0]
		tq.head = 0
	}
	return r
}

// drr multiplexes tenant queues with deficit round-robin.
type drr struct {
	byName map[string]*tenantQueue
	order  []*tenantQueue // rotation order: sorted by name, fixed at build
	cur    int            // rotation cursor
	queued int            // total requests across queues
}

// newDRR builds the scheduler. Weights below 1 are raised to 1 so every
// tenant makes progress each rotation.
func newDRR(tenants []Tenant) *drr {
	d := &drr{byName: make(map[string]*tenantQueue, len(tenants))}
	for _, t := range tenants {
		w := t.Weight
		if w < 1 {
			w = 1
		}
		if _, dup := d.byName[t.Name]; dup {
			continue
		}
		tq := &tenantQueue{name: t.Name, weight: w}
		d.byName[t.Name] = tq
		d.order = append(d.order, tq)
	}
	sort.Slice(d.order, func(i, j int) bool { return d.order[i].name < d.order[j].name })
	return d
}

// queue returns the tenant's queue, or nil for an unknown tenant.
func (d *drr) queue(tenant string) *tenantQueue { return d.byName[tenant] }

// push enqueues one request on its tenant queue (admission already checked
// depth and shed policy).
func (d *drr) push(tq *tenantQueue, r *rreq) {
	tq.push(r)
	d.queued++
}

// pick dequeues the next request under DRR, or nil when everything is empty.
// Advancing onto a backlogged queue recharges its deficit by its weight;
// a queue that empties (or is visited empty) forfeits its remaining deficit,
// so credit never accrues across idle periods.
func (d *drr) pick() *rreq {
	if d.queued == 0 {
		return nil
	}
	for {
		tq := d.order[d.cur]
		if tq.size() > 0 && tq.deficit >= 1 {
			tq.deficit--
			r := tq.pop()
			d.queued--
			if tq.size() == 0 {
				tq.deficit = 0
			}
			return r
		}
		if tq.size() == 0 {
			tq.deficit = 0
		}
		d.cur = (d.cur + 1) % len(d.order)
		if next := d.order[d.cur]; next.size() > 0 {
			next.deficit += next.weight
		}
	}
}
