package router

import (
	"context"
	"errors"
	"strings"
	"testing"

	"autoscale/internal/dnn"
	"autoscale/internal/serve"
)

// Satellite coverage: admission under live reconfiguration. Shrinking a
// tenant's queue depth or the global in-flight budget while requests are
// queued must shed deterministically — every request gets exactly one
// terminal response, nothing is stranded, and the in-flight gauge returns
// to zero.

func TestQueueDepthShrinkEvictsNewestDeterministically(t *testing.T) {
	rt := pausedRouter(Config{TenantQueueDepth: 8, Shed: serve.ShedNewest})
	m := dnn.MustByName("MobileNet v3")
	var chans []<-chan serve.Response
	for i := 0; i < 6; i++ {
		ch, err := rt.Submit(serve.Request{Model: m, Conditions: conds()})
		if err != nil {
			t.Fatal(err)
		}
		chans = append(chans, ch)
	}

	evicted, err := rt.SetTenantQueueDepth(DefaultTenant, 2)
	if err != nil {
		t.Fatal(err)
	}
	if evicted != 4 {
		t.Fatalf("shrink 6 -> 2 evicted %d, want 4", evicted)
	}
	// ShedNewest evicts from the tail: the four newest submissions get one
	// terminal shed response each, the two oldest stay queued untouched.
	for i, ch := range chans {
		select {
		case r := <-ch:
			if i < 2 {
				t.Fatalf("surviving request %d terminated by the shrink: %+v", i, r)
			}
			if r.Status != serve.StatusShed || !errors.Is(r.Err, serve.ErrQueueFull) {
				t.Fatalf("evicted request %d got %+v, want shed", i, r)
			}
		default:
			if i >= 2 {
				t.Fatalf("evicted request %d got no terminal response", i)
			}
		}
	}
	// Books balance: exactly one shed per eviction, queue at the new bound.
	if got := rt.RouterMetrics().Shed; got != 4 {
		t.Fatalf("shed counter = %d, want 4 (no double count)", got)
	}
	rows := rt.TenantQueues()
	for _, row := range rows {
		if row.Tenant == DefaultTenant {
			if row.Queued != 2 || row.Depth != 2 {
				t.Fatalf("after shrink: queued=%d depth=%d, want 2/2", row.Queued, row.Depth)
			}
		}
	}
}

func TestQueueDepthShrinkShedOldest(t *testing.T) {
	rt := pausedRouter(Config{TenantQueueDepth: 8, Shed: serve.ShedOldest})
	m := dnn.MustByName("MobileNet v3")
	var chans []<-chan serve.Response
	for i := 0; i < 5; i++ {
		ch, err := rt.Submit(serve.Request{Model: m, Conditions: conds()})
		if err != nil {
			t.Fatal(err)
		}
		chans = append(chans, ch)
	}
	if evicted, err := rt.SetTenantQueueDepth(DefaultTenant, 2); err != nil || evicted != 3 {
		t.Fatalf("shrink evicted %d (err %v), want 3", evicted, err)
	}
	// ShedOldest evicts from the head: submissions 0..2 shed, 3..4 survive.
	for i, ch := range chans {
		select {
		case r := <-ch:
			if i >= 3 || r.Status != serve.StatusShed {
				t.Fatalf("request %d got %+v", i, r)
			}
		default:
			if i < 3 {
				t.Fatalf("evicted request %d got no terminal response", i)
			}
		}
	}
}

func TestQueueDepthGrowEvictsNothing(t *testing.T) {
	rt := pausedRouter(Config{TenantQueueDepth: 4})
	m := dnn.MustByName("MobileNet v3")
	for i := 0; i < 3; i++ {
		if _, err := rt.Submit(serve.Request{Model: m, Conditions: conds()}); err != nil {
			t.Fatal(err)
		}
	}
	if evicted, err := rt.SetTenantQueueDepth(DefaultTenant, 16); err != nil || evicted != 0 {
		t.Fatalf("grow evicted %d (err %v), want 0", evicted, err)
	}
	if got := rt.RouterMetrics().Shed; got != 0 {
		t.Fatalf("grow shed %d requests", got)
	}
}

// TestBudgetShrinkUnderLoad shrinks the global in-flight budget while a
// burst is queued: no request may be stranded (every submission terminates)
// or double-counted, and the in-flight gauge must drain to zero.
func TestBudgetShrinkUnderLoad(t *testing.T) {
	gw := testShard(t, "shard-a", []string{"lane-a", "lane-b"}, 1, serve.Config{})
	rt, err := New([]ShardGateway{{"shard-a", gw}}, Config{GlobalBudget: 4})
	if err != nil {
		t.Fatal(err)
	}
	m := dnn.MustByName("MobileNet v3")
	const n = 24
	var chans []<-chan serve.Response
	for i := 0; i < n; i++ {
		ch, err := rt.Submit(serve.Request{Model: m, Conditions: conds()})
		if err != nil {
			t.Fatal(err)
		}
		chans = append(chans, ch)
	}
	if got := rt.SetGlobalBudget(1); got != 1 {
		t.Fatalf("SetGlobalBudget(1) applied %d", got)
	}
	served := 0
	for i, ch := range chans {
		r := <-ch
		if r.Status != serve.StatusServed {
			t.Fatalf("request %d terminated %+v under budget shrink, want served (shrink never sheds)", i, r)
		}
		served++
	}
	if served != n {
		t.Fatalf("served %d of %d", served, n)
	}
	if got := rt.Inflight(); got != 0 {
		t.Fatalf("in-flight gauge = %d after drain, want 0", got)
	}
	met := rt.RouterMetrics()
	if met.Shed != 0 || met.Failed != 0 {
		t.Fatalf("budget shrink shed/failed requests: %+v", met)
	}
	if met.Dispatched != n {
		t.Fatalf("dispatched %d, want %d (no double dispatch)", met.Dispatched, n)
	}
	if err := rt.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestAdmissionGateReconfiguration flips a tenant's admission-wait gate on
// and off against a real backlog and checks sheds are a pure function of
// (gate, backlog).
func TestAdmissionGateReconfiguration(t *testing.T) {
	gw := testShard(t, "shard-a", []string{"lane-a"}, 1, serve.Config{})
	rt, err := New([]ShardGateway{{"shard-a", gw}}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Shutdown(context.Background())
	m := dnn.MustByName("MobileNet v3")

	// Build a real virtual backlog: serve stamped requests sequentially so
	// the lane clock runs ahead of early arrival stamps.
	for i := 0; i < 30; i++ {
		if _, err := rt.Do(serve.Request{Model: m, Conditions: conds(), ArrivalS: 0.001 * float64(i+1)}); err != nil {
			t.Fatal(err)
		}
	}
	backlog := rt.MinBacklogS(0.01)
	if backlog <= 0.05 {
		t.Fatalf("backlog %.3fs too small to exercise the gate", backlog)
	}

	// Gate on, stale arrival: shed at admission.
	if err := rt.SetAdmissionWait(DefaultTenant, 0.05); err != nil {
		t.Fatal(err)
	}
	r, _ := rt.Do(serve.Request{Model: m, Conditions: conds(), ArrivalS: 0.01})
	if r.Status != serve.StatusShed {
		t.Fatalf("gated stale arrival got %+v, want shed", r)
	}

	// Gate on, fresh arrival (no backlog relative to it): admitted.
	fresh := gw.MinLaneClock() + 1
	if r, err := rt.Do(serve.Request{Model: m, Conditions: conds(), ArrivalS: fresh}); err != nil || r.Status != serve.StatusServed {
		t.Fatalf("gated fresh arrival got %+v (err %v), want served", r, err)
	}

	// Gate off: the stale arrival is admitted again.
	if err := rt.SetAdmissionWait(DefaultTenant, 0); err != nil {
		t.Fatal(err)
	}
	if r, err := rt.Do(serve.Request{Model: m, Conditions: conds(), ArrivalS: 0.01}); err != nil || r.Status != serve.StatusServed {
		t.Fatalf("ungated stale arrival got %+v (err %v), want served", r, err)
	}

	// Unknown tenants are rejected loudly.
	if err := rt.SetAdmissionWait("nope", 1); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("SetAdmissionWait(unknown) = %v, want ErrUnknownTenant", err)
	}
	if _, err := rt.SetTenantQueueDepth("nope", 1); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("SetTenantQueueDepth(unknown) = %v, want ErrUnknownTenant", err)
	}
	if err := rt.SetTenantWeight("nope", 1); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("SetTenantWeight(unknown) = %v, want ErrUnknownTenant", err)
	}
}

// TestRouterPromHeadersOnce asserts every autoscale_router_* series in the
// merged Prometheus body renders its HELP and TYPE comment lines exactly
// once, with no sampled series missing its headers.
func TestRouterPromHeadersOnce(t *testing.T) {
	gwA := testShard(t, "shard-a", []string{"lane-a"}, 1, serve.Config{})
	gwB := testShard(t, "shard-b", []string{"lane-b"}, 2, serve.Config{})
	rt, err := New([]ShardGateway{{"shard-a", gwA}, {"shard-b", gwB}}, Config{
		Tenants: []Tenant{{"gold", 4}, {"best", 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Shutdown(context.Background())
	m := dnn.MustByName("MobileNet v3")
	for i, tenant := range []string{"gold", "best", "gold", ""} {
		if _, err := rt.Do(serve.Request{Model: m, Conditions: conds(), Tenant: tenant, ArrivalS: 0.01 * float64(i+1)}); err != nil {
			t.Fatal(err)
		}
	}

	body := string(rt.PromText())
	help, typ := map[string]int{}, map[string]int{}
	sampled := map[string]bool{}
	for _, line := range strings.Split(body, "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			help[strings.Fields(line[len("# HELP "):])[0]]++
		case strings.HasPrefix(line, "# TYPE "):
			typ[strings.Fields(line[len("# TYPE "):])[0]]++
		case strings.HasPrefix(line, "autoscale_"):
			name := line
			if i := strings.IndexAny(line, "{ "); i > 0 {
				name = line[:i]
			}
			for _, suf := range []string{"_bucket", "_sum", "_count"} {
				if base := strings.TrimSuffix(name, suf); base != name && help[base] > 0 {
					name = base
					break
				}
			}
			sampled[name] = true
		}
	}
	routerSeries := 0
	for name := range sampled {
		if help[name] != 1 {
			t.Errorf("metric %s: %d HELP lines, want exactly 1", name, help[name])
		}
		if typ[name] != 1 {
			t.Errorf("metric %s: %d TYPE lines, want exactly 1", name, typ[name])
		}
		if strings.HasPrefix(name, "autoscale_router_") {
			routerSeries++
		}
	}
	// The router contributes its full inventory, not just a token series.
	for _, name := range []string{
		"autoscale_router_submitted_total", "autoscale_router_dispatched_total",
		"autoscale_router_shed_total", "autoscale_router_inflight",
		"autoscale_router_shard_state", "autoscale_router_shards_alive",
		"autoscale_router_tenant_weight", "autoscale_router_tenant_admitted_total",
	} {
		if !sampled[name] {
			t.Errorf("merged body missing %s", name)
		}
	}
	if routerSeries < 10 {
		t.Errorf("only %d autoscale_router_* series sampled; inventory shrank?", routerSeries)
	}
}
