// Package router is the cluster-scale routing tier over gateway shards: one
// front door for a fleet too large for a single serve.Gateway. It owns what
// no single shard can decide — device-to-shard placement (consistent-hash
// ring with bounded-load overflow), cross-shard admission with a global
// in-flight budget, per-tenant weighted fairness (deficit round-robin over
// tenant queues), and shard lifecycle: crash drills on the virtual clock,
// graceful draining, and re-homing a lost shard's device lanes onto
// survivors with checkpoint warm-start. Within a shard, the gateway's own
// admission, deadline and resilience machinery applies unchanged; the router
// deliberately adds no second opinion on any per-request decision a shard
// already makes.
//
// Like the serving layer under it, the router is deterministic where it can
// be: placement is a pure function of device and shard names, DRR order is a
// pure function of the admission sequence, and crash drills fire on shard
// virtual time — so a fixed-seed storm replays byte-identical traces even
// across a mid-run shard kill.
package router

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"autoscale/internal/core"
	"autoscale/internal/fault"
	"autoscale/internal/obs"
	"autoscale/internal/policy"
	"autoscale/internal/serve"
	"autoscale/internal/serve/metrics"
	"autoscale/internal/tracez"
)

// Sentinel errors for router-terminated requests.
var (
	// ErrUnknownTenant marks a request naming a fairness class the router
	// was not configured with.
	ErrUnknownTenant = errors.New("router: unknown tenant")
	// ErrNoHealthyShard marks a request with no live shard left to serve it.
	ErrNoHealthyShard = errors.New("router: no healthy shard")
)

// DefaultTenant is the catch-all fairness class requests with an empty
// Tenant are billed to. The router always provisions it (weight 1) unless
// the configuration defines it explicitly.
const DefaultTenant = "default"

// Tenant is one weighted fairness class: under saturating load, tenants are
// served in proportion to their weights (deficit round-robin, unit cost per
// request). Weights below 1 are raised to 1.
type Tenant struct {
	Name   string
	Weight int
}

// ShardGateway names one gateway shard for the router.
type ShardGateway struct {
	Name    string
	Gateway *serve.Gateway
}

// Config tunes a Router.
type Config struct {
	// Tenants are the fairness classes. The DefaultTenant (weight 1) is
	// appended when absent so unclassified traffic is always admissible.
	Tenants []Tenant
	// GlobalBudget bounds in-flight requests across all shards (default 64):
	// cross-shard backpressure on top of each shard's own queue admission.
	GlobalBudget int
	// TenantQueueDepth bounds each tenant's router queue (default 256).
	TenantQueueDepth int
	// Shed selects the admission victim on a full tenant queue, mirroring
	// the gateway's policy vocabulary: ShedNewest rejects the arrival,
	// ShedOldest evicts the head of the tenant's queue.
	Shed serve.ShedPolicy
	// VNodes is the consistent-hash ring's virtual-node count per shard
	// (default 64).
	VNodes int
	// LoadFactor is the bounded-load placement ceiling: no shard owns more
	// than ceil(LoadFactor * devices / aliveShards) device lanes (default
	// 1.25). Values below 1 clamp to a perfectly even split.
	LoadFactor float64
	// MaxFailovers caps per-request re-dispatches after a shard bounce
	// (default 2). A request over the cap fails with the bounce error.
	MaxFailovers int
	// EngineFactory builds a fresh engine for a device being re-homed onto a
	// surviving shard (the dead shard's engine is gone with its process).
	// The new lane still warm-starts from the device's latest checkpoint via
	// the shard gateway's policy plane. Without a factory, a dead shard's
	// devices are lost and pinned requests to them fail.
	EngineFactory func(device string) (*core.Engine, error)
	// ShardFactory, when set, lets ReviveShard rebuild a drained or dead
	// shard's gateway from scratch: a fresh serve.Gateway over the named
	// device lanes, warm-started from the checkpoint store by its own
	// policy plane. Without it, downed shards stay down.
	ShardFactory func(name string, devices []string) (*serve.Gateway, error)
	// Checkpoints, when non-nil, is the cross-shard learning plane: the
	// router's policy syncer federates every shard's workers against it, so
	// experience merges fleet-wide rather than per shard.
	Checkpoints policy.Sink
	// PolicySync tunes the cross-shard syncer.
	PolicySync policy.SyncConfig
	// Faults, when non-nil, scripts shard-crash drills: each shard_crash
	// spec kills its shard once the shard's virtual clock reaches the
	// event's time, exactly like the gateway's worker-level drills.
	Faults *fault.Injector
	// Clock overrides the router's time source (tests; default time.Now).
	Clock func() time.Time
	// Tracer, when non-nil, starts one causal trace per submitted request at
	// admission, so the span tree covers the whole path: router admission and
	// DRR dispatch, then the shard's queue/decide/execute legs. Shard configs
	// should NOT also set a Tracer — requests arrive at the gateway already
	// carrying their handle, and the gateway only annotates it.
	Tracer *tracez.Tracer
	// Recorder, when non-nil, is the incident flight recorder shared with the
	// shards (breaker transitions) and the tiers above (supervisor ladder
	// edges, planner actuations).
	Recorder *tracez.FlightRecorder
}

func (c Config) globalBudget() int {
	if c.GlobalBudget <= 0 {
		return 64
	}
	return c.GlobalBudget
}

func (c Config) tenantQueueDepth() int {
	if c.TenantQueueDepth <= 0 {
		return 256
	}
	return c.TenantQueueDepth
}

func (c Config) maxFailovers() int {
	if c.MaxFailovers <= 0 {
		return 2
	}
	return c.MaxFailovers
}

func (c Config) loadFactor() float64 {
	if c.LoadFactor <= 0 {
		return 1.25
	}
	return c.LoadFactor
}

// PlaceDevices computes the initial device-to-shard assignment the router
// and Fleet.ProvisionRouter share: consistent-hash placement with
// bounded-load overflow, a pure function of the name sets. Zero vnodes and
// factor select the defaults.
func PlaceDevices(devices, shards []string, vnodes int, factor float64) map[string]string {
	if factor <= 0 {
		factor = Config{}.loadFactor()
	}
	return placeDevices(devices, shards, nil, vnodes, factor)
}

// shardState is the lifecycle of one shard.
type shardState int

const (
	shardHealthy shardState = iota
	shardDraining
	shardDrained
	shardDead
	// shardCordoned is a supervised placement hold: the shard keeps serving
	// pinned requests (its lanes stay homed) but receives no unpinned work
	// and is never a re-homing target, so a suspect shard can be observed
	// under reduced load without losing its warm state.
	shardCordoned
)

func (s shardState) String() string {
	switch s {
	case shardHealthy:
		return "healthy"
	case shardDraining:
		return "draining"
	case shardDrained:
		return "drained"
	case shardDead:
		return "dead"
	case shardCordoned:
		return "cordoned"
	}
	return fmt.Sprintf("shardState(%d)", int(s))
}

// serving reports whether the state accepts pinned traffic (healthy or
// cordoned).
func (s shardState) serving() bool { return s == shardHealthy || s == shardCordoned }

// shard is one gateway plus its lifecycle and drill state.
type shard struct {
	name     string
	gw       *serve.Gateway
	state    shardState
	inflight atomic.Int64 // router-dispatched requests inside this shard

	// lanes records the devices homed here at the last takedown, so a
	// revive can rebuild the same lane set; incarnation counts gateway
	// rebuilds (the supervisor audits virtual-clock monotonicity per
	// incarnation, since a fresh gateway's clock restarts at zero).
	lanes       []string
	incarnation int

	events    []fault.Event // scripted shard_crash drills, time-ordered
	nextEvent int
}

// rreq is one request in the routing tier.
type rreq struct {
	req         serve.Request
	resp        chan serve.Response
	submittedAt time.Time
	attempts    int // failover re-dispatches consumed
}

// Router fronts a fleet of gateway shards. It is safe for concurrent use.
type Router struct {
	cfg          Config
	budget       atomic.Int64 // global in-flight budget; the planner retunes it live
	tenantDepth  int          // default per-tenant queue bound (tenantQueue.depth overrides)
	maxFailovers int

	// gated is true while any tenant has a positive admission-wait bound, so
	// ungated deployments never pay the backlog estimate on Submit.
	gated atomic.Bool

	// mu guards shard lifecycle state and the device-home map; the lock
	// order is mu before any gateway's internal lock.
	mu     sync.RWMutex
	shards map[string]*shard
	order  []string          // sorted shard names
	homes  map[string]string // device -> shard name, always a live shard

	// qmu guards the DRR scheduler and tenant queues.
	qmu sync.Mutex
	drr *drr

	inflight atomic.Int64 // global in-flight dispatches
	rr       atomic.Uint64
	met      routerMetrics
	closed   atomic.Bool

	wake   chan struct{}
	stopc  chan struct{}
	dispWG sync.WaitGroup // dispatcher goroutine
	pipeWG sync.WaitGroup // per-dispatch pipe goroutines

	syncMu sync.Mutex
	syncer *policy.Syncer
}

// New builds a router over the given shards and starts its dispatcher.
// Shards need distinct non-empty names, non-nil gateways, and disjoint
// device sets (a device lane lives on exactly one shard).
func New(shards []ShardGateway, cfg Config) (*Router, error) {
	if len(shards) == 0 {
		return nil, errors.New("router: no shards")
	}
	if cfg.Shed != serve.ShedNewest && cfg.Shed != serve.ShedOldest {
		return nil, fmt.Errorf("router: unknown shed policy %d", cfg.Shed)
	}
	tenants := append([]Tenant(nil), cfg.Tenants...)
	hasDefault := false
	for _, t := range tenants {
		if t.Name == "" {
			return nil, errors.New("router: tenant with empty name")
		}
		if t.Name == DefaultTenant {
			hasDefault = true
		}
	}
	if !hasDefault {
		tenants = append(tenants, Tenant{Name: DefaultTenant, Weight: 1})
	}

	rt := &Router{
		cfg:          cfg,
		tenantDepth:  cfg.tenantQueueDepth(),
		maxFailovers: cfg.maxFailovers(),
		shards:       make(map[string]*shard, len(shards)),
		homes:        make(map[string]string),
		drr:          newDRR(tenants),
		wake:         make(chan struct{}, 1),
		stopc:        make(chan struct{}),
	}
	rt.budget.Store(int64(cfg.globalBudget()))
	for _, sg := range shards {
		if sg.Name == "" {
			return nil, errors.New("router: shard with empty name")
		}
		if sg.Gateway == nil {
			return nil, fmt.Errorf("router: shard %q has nil gateway", sg.Name)
		}
		if _, dup := rt.shards[sg.Name]; dup {
			return nil, fmt.Errorf("router: duplicate shard %q", sg.Name)
		}
		sh := &shard{name: sg.Name, gw: sg.Gateway}
		if cfg.Faults != nil {
			sh.events = cfg.Faults.ShardEvents(sg.Name)
		}
		rt.shards[sg.Name] = sh
		rt.order = append(rt.order, sg.Name)
		for _, dev := range sg.Gateway.Devices() {
			if prev, dup := rt.homes[dev]; dup {
				return nil, fmt.Errorf("router: device %q on shards %q and %q", dev, prev, sg.Name)
			}
			rt.homes[dev] = sg.Name
		}
	}
	sort.Strings(rt.order)

	rt.dispWG.Add(1)
	go rt.run()
	return rt, nil
}

func (rt *Router) now() time.Time {
	if rt.cfg.Clock != nil {
		return rt.cfg.Clock()
	}
	return time.Now()
}

// wakeUp nudges the dispatcher (non-blocking; coalesces).
func (rt *Router) wakeUp() {
	select {
	case rt.wake <- struct{}{}:
	default:
	}
}

// Submit runs cross-shard admission on one request: tenant classification,
// per-tenant queue bounds with the configured shed policy, then the DRR
// scheduler. The returned channel (buffered, delivered to exactly once)
// carries the terminal Response. The error return is reserved for misuse
// (nil model) and a closed router.
func (rt *Router) Submit(req serve.Request) (<-chan serve.Response, error) {
	if req.Model == nil {
		return nil, errors.New("router: request needs a model")
	}
	if rt.closed.Load() {
		return nil, serve.ErrClosed
	}
	rt.met.submitted.Add(1)
	now := rt.now()
	r := &rreq{req: req, resp: make(chan serve.Response, 1), submittedAt: now}

	name := req.Tenant
	if name == "" {
		name = DefaultTenant
	}
	// The normalized tenant flows through to the shard so traces and the
	// fairness accounting agree on the class.
	r.req.Tenant = name

	// Causal tracing starts at cross-shard admission: every later hop
	// (dispatch, shard queue, decide, recovery legs) annotates this handle.
	if rt.cfg.Tracer != nil && r.req.Trace == nil {
		r.req.Trace = rt.cfg.Tracer.Start(req.Model.Name, name, req.ArrivalS)
	}

	// The backlog estimate reads shard state under rt.mu, so it is computed
	// before qmu (the lock order never nests qmu inside mu or vice versa).
	// Negative means "no gate applies to this request".
	backlog := -1.0
	if rt.gated.Load() && req.ArrivalS > 0 {
		backlog = rt.MinBacklogS(req.ArrivalS)
	}

	rt.qmu.Lock()
	tq := rt.drr.queue(name)
	if tq == nil {
		rt.qmu.Unlock()
		rt.met.failed.Add(1)
		r.req.Trace.Flag(tracez.FlagFailed)
		r.req.Trace.Finish("failed")
		r.resp <- serve.Response{
			Status: serve.StatusFailed, Err: fmt.Errorf("%w: %q", ErrUnknownTenant, name),
			SubmittedAt: now, DoneAt: now,
		}
		return r.resp, nil
	}
	// Per-class admission gate: shed while the estimated backlog exceeds the
	// tenant's virtual-wait bound. Bounds ordered by class make overload
	// degrade strictly best-effort -> silver -> gold.
	if tq.maxVWaitS > 0 && backlog > tq.maxVWaitS {
		tq.shed++
		rt.met.shed.Add(1)
		rt.qmu.Unlock()
		r.resp <- rt.shedResponse(r)
		return r.resp, nil
	}
	if tq.size() >= rt.queueDepthLocked(tq) {
		if rt.cfg.Shed == serve.ShedOldest && tq.size() > 0 {
			old := tq.popOldest()
			rt.drr.queued--
			tq.shed++
			rt.met.shed.Add(1)
			old.resp <- rt.shedResponse(old)
		} else {
			tq.shed++
			rt.met.shed.Add(1)
			rt.qmu.Unlock()
			r.resp <- rt.shedResponse(r)
			return r.resp, nil
		}
	}
	tq.admitted++
	rt.drr.push(tq, r)
	rt.qmu.Unlock()
	rt.wakeUp()
	return r.resp, nil
}

// queueDepthLocked returns a tenant queue's effective bound: its own depth
// when a planner set one, the router default otherwise. Caller holds qmu.
func (rt *Router) queueDepthLocked(tq *tenantQueue) int {
	if tq.depth > 0 {
		return tq.depth
	}
	return rt.tenantDepth
}

// shedResponse builds the terminal shed response for one request and closes
// its trace — every router-level shed path (admission gate, full tenant
// queue, planner queue-depth evictions) terminates through here.
func (rt *Router) shedResponse(r *rreq) serve.Response {
	r.req.Trace.Flag(tracez.FlagShed)
	r.req.Trace.Finish("shed")
	return serve.Response{
		Status: serve.StatusShed, Err: serve.ErrQueueFull,
		SubmittedAt: r.submittedAt, DoneAt: rt.now(),
	}
}

// Do submits one request and waits for its response — the synchronous
// convenience mirroring Gateway.Do.
func (rt *Router) Do(req serve.Request) (serve.Response, error) {
	ch, err := rt.Submit(req)
	if err != nil {
		return serve.Response{}, err
	}
	r := <-ch
	if r.Status != serve.StatusServed {
		return r, r.Err
	}
	return r, nil
}

// run is the dispatcher loop: a single goroutine that owns the
// queue-to-shard handoff, so DRR order is exactly dispatch order.
func (rt *Router) run() {
	defer rt.dispWG.Done()
	for {
		select {
		case <-rt.stopc:
			return
		case <-rt.wake:
		}
		rt.pump()
	}
}

// pump drains the scheduler until the global budget is saturated or the
// queues are empty. Completions wake the dispatcher again.
func (rt *Router) pump() {
	for {
		rt.fireDrills()
		if rt.inflight.Load() >= rt.budget.Load() {
			return
		}
		rt.qmu.Lock()
		r := rt.drr.pick()
		rt.qmu.Unlock()
		if r == nil {
			return
		}
		rt.dispatchOne(r)
	}
}

// fireDrills kills any healthy shard whose next scripted shard_crash event
// has come due on the shard's virtual clock. Checked on every dispatch, so
// under deterministic (sequential) driving the kill lands at the same
// request index every run.
func (rt *Router) fireDrills() {
	if rt.cfg.Faults == nil {
		return
	}
	for {
		victim := ""
		rt.mu.RLock()
		for _, name := range rt.order {
			sh := rt.shards[name]
			if !sh.state.serving() || sh.nextEvent >= len(sh.events) {
				continue
			}
			if ev := sh.events[sh.nextEvent]; ev.Kind == fault.KindShardCrash && sh.gw.VirtualNow() >= ev.AtS {
				victim = name
				break
			}
		}
		rt.mu.RUnlock()
		if victim == "" {
			return
		}
		rt.mu.Lock()
		sh := rt.shards[victim]
		fire := sh.state.serving() && sh.nextEvent < len(sh.events)
		if fire {
			sh.nextEvent++
		}
		rt.mu.Unlock()
		if fire {
			rt.KillShard(victim) //nolint:errcheck // racing lifecycle is benign
		}
	}
}

// dispatchOne routes a picked request to its shard and hands the wait to a
// pipe goroutine. Pinned requests go to the device's home shard; unpinned
// requests go to the least-loaded healthy shard (fewest router-dispatched
// requests in flight, shard-name tiebreak).
func (rt *Router) dispatchOne(r *rreq) {
	rt.mu.RLock()
	var sh *shard
	var err error
	if r.req.Device != "" {
		home, ok := rt.homes[r.req.Device]
		if !ok {
			err = fmt.Errorf("%w: %q", serve.ErrUnknownDevice, r.req.Device)
		} else if s := rt.shards[home]; s.state.serving() {
			sh = s
		} else {
			err = fmt.Errorf("%w: device %q homed on %s shard %q", ErrNoHealthyShard, r.req.Device, s.state, home)
		}
	} else {
		// Least-loaded healthy shard; a rotating start breaks ties so an
		// underloaded fleet still spreads across shards.
		offset := int(rt.rr.Add(1))
		for i := 0; i < len(rt.order); i++ {
			s := rt.shards[rt.order[(offset+i)%len(rt.order)]]
			if s.state != shardHealthy {
				continue
			}
			if sh == nil || s.inflight.Load() < sh.inflight.Load() {
				sh = s
			}
		}
		if sh == nil {
			err = ErrNoHealthyShard
		}
	}
	rt.mu.RUnlock()
	if sh == nil {
		rt.fail(r, err)
		return
	}
	sh.inflight.Add(1)
	rt.inflight.Add(1)
	rt.met.dispatched.Add(1)
	rt.pipeWG.Add(1)
	go rt.pipe(r, sh)
}

// fail terminates one request at the router.
func (rt *Router) fail(r *rreq, err error) {
	rt.met.failed.Add(1)
	r.req.Trace.Flag(tracez.FlagFailed)
	r.req.Trace.Finish("failed")
	r.resp <- serve.Response{
		Status: serve.StatusFailed, Err: err,
		SubmittedAt: r.submittedAt, DoneAt: rt.now(),
	}
}

// pipe submits one dispatched request to its shard and relays the terminal
// response — unless the shard bounced it (killed or draining), in which case
// the request re-enters the scheduler for failover, up to MaxFailovers. The
// requeue happens before the in-flight gauge drops so Shutdown's quiet check
// (queues empty AND nothing in flight) can never miss a failover in motion.
func (rt *Router) pipe(r *rreq, sh *shard) {
	defer rt.pipeWG.Done()
	var resp serve.Response
	bounced := false
	// The dispatch span records the router-side delay (admission to shard
	// handoff) and the chosen shard; a failed-over request accumulates one
	// dispatch span per hop.
	r.req.Trace.Span("dispatch", rt.now().Sub(r.submittedAt).Seconds(), sh.name)
	ch, err := sh.gw.Submit(r.req)
	if err != nil {
		// Admission refused: the shard closed between routing and submit.
		bounced = errors.Is(err, serve.ErrClosed)
		resp = serve.Response{
			Status: serve.StatusFailed, Err: err,
			SubmittedAt: r.submittedAt, DoneAt: rt.now(),
		}
	} else {
		resp = <-ch
		bounced = resp.Status == serve.StatusFailed && errors.Is(resp.Err, serve.ErrShardDown)
	}

	if bounced && r.attempts < rt.maxFailovers {
		r.attempts++
		rt.met.failovers.Add(1)
		// The same trace keeps accumulating: the next dispatch span lands on
		// the surviving shard, and the failover flag tail-keeps the trace.
		r.req.Trace.Flag(tracez.FlagFailover)
		rt.qmu.Lock()
		tq := rt.drr.queue(r.req.Tenant)
		if tq != nil {
			rt.drr.push(tq, r)
		}
		rt.qmu.Unlock()
		sh.inflight.Add(-1)
		rt.inflight.Add(-1)
		if tq == nil {
			rt.fail(r, resp.Err)
		}
		rt.wakeUp()
		return
	}

	sh.inflight.Add(-1)
	rt.inflight.Add(-1)
	if bounced {
		rt.met.failed.Add(1)
	} else {
		rt.met.completed.Add(1)
	}
	if resp.Status == serve.StatusFailed {
		// Bounced or admission-refused requests never reached a finishing
		// point inside the shard. The handle is one-shot, so this is a no-op
		// for traces the gateway already closed.
		r.req.Trace.Flag(tracez.FlagFailed)
		r.req.Trace.Finish("failed")
	}
	r.resp <- resp
	rt.wakeUp()
}

// KillShard crashes one healthy shard: its device lanes re-home onto
// survivors (fresh engines from the factory, warm-started from their latest
// checkpoints by the target gateway), the shard's queued requests bounce
// with ErrShardDown and fail over, and — crash semantics — nothing the shard
// had not already checkpointed survives.
func (rt *Router) KillShard(name string) error {
	sh, moved, err := rt.takeDown(name, shardDead)
	if err != nil {
		return err
	}
	killErr := sh.gw.Kill()
	rt.met.shardKills.Add(1)
	rt.met.rehomed.Add(uint64(moved))
	rt.wakeUp()
	return killErr
}

// DrainShard gracefully retires one healthy shard: a synchronous federation
// pass first (so checkpoints are fresh), then its device lanes re-home onto
// survivors, then the gateway drains its queues and flushes checkpoints and
// trace. Unlike KillShard, queued requests on the draining shard still
// execute.
func (rt *Router) DrainShard(ctx context.Context, name string) error {
	if rt.cfg.Checkpoints != nil {
		if _, err := rt.SyncPolicies(); err != nil {
			return fmt.Errorf("router: drain %s: pre-drain sync: %w", name, err)
		}
	}
	sh, moved, err := rt.takeDown(name, shardDraining)
	if err != nil {
		return err
	}
	rt.met.shardDrains.Add(1)
	rt.met.rehomed.Add(uint64(moved))
	shutErr := sh.gw.Shutdown(ctx)
	rt.mu.Lock()
	sh.state = shardDrained
	rt.mu.Unlock()
	rt.wakeUp()
	return shutErr
}

// takeDown transitions one serving (healthy or cordoned) shard to the given
// state and re-homes its devices, all under the lifecycle lock. The lane set
// owned at takedown is recorded so ReviveShard can rebuild it.
func (rt *Router) takeDown(name string, to shardState) (*shard, int, error) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	sh, ok := rt.shards[name]
	if !ok {
		return nil, 0, fmt.Errorf("router: unknown shard %q", name)
	}
	if !sh.state.serving() {
		return nil, 0, fmt.Errorf("router: shard %q is %s", name, sh.state)
	}
	sh.state = to
	sh.lanes = sh.lanes[:0]
	for dev, home := range rt.homes {
		if home == name {
			sh.lanes = append(sh.lanes, dev)
		}
	}
	sort.Strings(sh.lanes)
	return sh, rt.rehomeLocked(sh), nil
}

// CordonShard places a hold on one healthy shard: it keeps its lanes and
// keeps serving pinned requests, but receives no new unpinned work and is
// excluded from re-homing and planner capacity until uncordoned.
func (rt *Router) CordonShard(name string) error {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	sh, ok := rt.shards[name]
	if !ok {
		return fmt.Errorf("router: unknown shard %q", name)
	}
	if sh.state != shardHealthy {
		return fmt.Errorf("router: shard %q is %s, not healthy", name, sh.state)
	}
	sh.state = shardCordoned
	rt.met.cordons.Add(1)
	return nil
}

// UncordonShard lifts a cordon, returning the shard to full service.
func (rt *Router) UncordonShard(name string) error {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	sh, ok := rt.shards[name]
	if !ok {
		return fmt.Errorf("router: unknown shard %q", name)
	}
	if sh.state != shardCordoned {
		return fmt.Errorf("router: shard %q is %s, not cordoned", name, sh.state)
	}
	sh.state = shardHealthy
	rt.met.uncordons.Add(1)
	rt.wakeUp()
	return nil
}

// ReviveShard restarts a drained or dead shard: a fresh gateway over the
// shard's recorded lane set from Config.ShardFactory (warm-started from the
// checkpoint store by the gateway's policy plane), its lanes reclaimed from
// whichever survivors hold them, and the shard returned to healthy. The
// incarnation counter bumps so clock-monotonicity audits reset. Survivor
// gateways keep their now-stale lane copies; every routing decision filters
// by the home map, so those lanes simply idle.
func (rt *Router) ReviveShard(name string) error {
	if rt.cfg.ShardFactory == nil {
		return errors.New("router: no shard factory configured")
	}
	if rt.closed.Load() {
		return serve.ErrClosed
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	sh, ok := rt.shards[name]
	if !ok {
		return fmt.Errorf("router: unknown shard %q", name)
	}
	if sh.state != shardDrained && sh.state != shardDead {
		return fmt.Errorf("router: shard %q is %s, not revivable", name, sh.state)
	}
	if len(sh.lanes) == 0 {
		return fmt.Errorf("router: shard %q has no recorded lanes", name)
	}
	gw, err := rt.cfg.ShardFactory(name, append([]string(nil), sh.lanes...))
	if err != nil {
		return fmt.Errorf("router: revive %s: %w", name, err)
	}
	sh.gw = gw
	sh.state = shardHealthy
	sh.incarnation++
	for _, dev := range gw.Devices() {
		rt.homes[dev] = name
	}
	rt.met.revives.Add(1)
	rt.wakeUp()
	return nil
}

// rehomeLocked moves every device homed on sh to a surviving healthy shard:
// consistent-hash placement over the survivor set with bounded-load
// overflow, a fresh engine from the factory, and the target gateway's
// checkpoint warm-start. Devices the factory cannot rebuild (or with no
// survivor to land on) are dropped from the home map; pinned requests to
// them fail fast. Returns the number of lanes moved. Caller holds rt.mu.
func (rt *Router) rehomeLocked(sh *shard) int {
	var orphans []string
	for dev, home := range rt.homes {
		if home == sh.name {
			orphans = append(orphans, dev)
		}
	}
	sort.Strings(orphans)
	if len(orphans) == 0 {
		return 0
	}

	var alive []string
	counts := make(map[string]int)
	for _, name := range rt.order {
		if rt.shards[name].state == shardHealthy {
			alive = append(alive, name)
			counts[name] = 0
		}
	}
	for dev, home := range rt.homes {
		if _, ok := counts[home]; ok && dev != "" {
			counts[home]++
		}
	}
	if len(alive) == 0 || rt.cfg.EngineFactory == nil {
		for _, dev := range orphans {
			delete(rt.homes, dev)
		}
		return 0
	}

	placed := placeDevices(orphans, alive, counts, rt.cfg.VNodes, rt.cfg.loadFactor())
	moved := 0
	for _, dev := range orphans {
		target := placed[dev]
		engine, err := rt.cfg.EngineFactory(dev)
		if err != nil {
			delete(rt.homes, dev)
			continue
		}
		if err := rt.shards[target].gw.AddBackend(serve.Backend{Device: dev, Engine: engine}); err != nil {
			delete(rt.homes, dev)
			continue
		}
		rt.homes[dev] = target
		moved++
	}
	return moved
}

// CondemnShard marks a drained shard permanently dead — the supervisor's
// terminal verdict when a shard's remediation budget is exhausted, so a
// flapping shard converges to dead instead of oscillating through restarts.
// Condemning a dead shard is a no-op.
func (rt *Router) CondemnShard(name string) error {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	sh, ok := rt.shards[name]
	if !ok {
		return fmt.Errorf("router: unknown shard %q", name)
	}
	switch sh.state {
	case shardDead:
		return nil
	case shardDrained:
		sh.state = shardDead
		return nil
	}
	return fmt.Errorf("router: shard %q is %s, not condemnable", name, sh.state)
}

// Devices returns the routable device names in sorted order.
func (rt *Router) Devices() []string {
	rt.mu.RLock()
	out := make([]string, 0, len(rt.homes))
	for dev := range rt.homes {
		out = append(out, dev)
	}
	rt.mu.RUnlock()
	sort.Strings(out)
	return out
}

// Home returns the shard currently serving a device ("" when unknown).
func (rt *Router) Home(device string) string {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return rt.homes[device]
}

// Closed reports whether Shutdown has begun.
func (rt *Router) Closed() bool { return rt.closed.Load() }

// RouterMetrics copies the routing tier's own counters.
func (rt *Router) RouterMetrics() RouterSnapshot { return rt.met.snapshot() }

// Tracer exposes the routing tier's causal tracer — nil when tracing is off.
// It lights up the admin server's /traces endpoints (serve.TraceSource).
func (rt *Router) Tracer() *tracez.Tracer { return rt.cfg.Tracer }

// Recorder exposes the incident flight recorder (nil when not configured),
// so the supervision and planning tiers note their events into the same ring
// the shards' breakers feed.
func (rt *Router) Recorder() *tracez.FlightRecorder { return rt.cfg.Recorder }

// Snapshot merges every shard's metrics registry into one fleet-wide view
// (dead shards included — their counters froze at the kill but their served
// history still counts).
func (rt *Router) Snapshot() metrics.Snapshot {
	rt.mu.RLock()
	snaps := make([]metrics.Snapshot, 0, len(rt.order))
	for _, name := range rt.order {
		snaps = append(snaps, rt.shards[name].gw.Snapshot())
	}
	rt.mu.RUnlock()
	out := metrics.Merge(snaps...)
	// The cross-shard syncer is the router's own — shard registries never
	// see it — so its failure state overlays the merged view here.
	rt.syncMu.Lock()
	syn := rt.syncer
	rt.syncMu.Unlock()
	if syn != nil {
		h := syn.Health()
		out.SyncPasses += int64(h.Passes)
		out.SyncFailures += int64(h.Failures)
		if c := int64(h.ConsecutiveFailures); c > out.SyncConsecutiveFailures {
			out.SyncConsecutiveFailures = c
		}
		if out.SyncLastError == "" {
			out.SyncLastError = h.LastError
		}
	}
	return out
}

// Health unions per-device learning health across live shards, filtered to
// each device's current home so a re-homed device reports from the lane that
// actually serves it.
func (rt *Router) Health() map[string]core.Health {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	out := make(map[string]core.Health, len(rt.homes))
	for _, name := range rt.order {
		sh := rt.shards[name]
		if !sh.state.serving() && sh.state != shardDraining {
			continue
		}
		for dev, h := range sh.gw.Health() {
			if rt.homes[dev] == name {
				out[dev] = h
			}
		}
	}
	return out
}

// ShardStatuses reports each shard's lifecycle row for the admin /shards
// document, in shard-name order.
func (rt *Router) ShardStatuses() []serve.ShardStatus {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	out := make([]serve.ShardStatus, 0, len(rt.order))
	for _, name := range rt.order {
		sh := rt.shards[name]
		var devices []string
		for dev, home := range rt.homes {
			if home == name {
				devices = append(devices, dev)
			}
		}
		sort.Strings(devices)
		snap := sh.gw.Snapshot()
		out = append(out, serve.ShardStatus{
			Name:        name,
			State:       sh.state.String(),
			Incarnation: sh.incarnation,
			Devices:     devices,
			QueueDepth:  snap.QueueDepth,
			Served:      snap.Served,
			Shed:        snap.Shed,
			Failed:      snap.Failed,
			VirtualS:    sh.gw.VirtualNow(),
		})
	}
	return out
}

// ShardState reports one shard's lifecycle state name ("" when unknown).
func (rt *Router) ShardState(name string) string {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	if sh, ok := rt.shards[name]; ok {
		return sh.state.String()
	}
	return ""
}

// ShardSignal is one shard's raw health inputs, gathered in a single locked
// pass for the supervisor: lifecycle, per-shard serving metrics, per-device
// learning health, and the in-flight gauge.
type ShardSignal struct {
	Name        string
	State       string
	Incarnation int
	VirtualS    float64
	Inflight    int64
	Snap        metrics.Snapshot
	Health      map[string]core.Health
}

// ShardSignals collects every shard's health inputs in shard-name order.
// Dead and drained shards report their frozen counters (nil Health), so a
// supervisor can still audit their final accounting.
func (rt *Router) ShardSignals() []ShardSignal {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	out := make([]ShardSignal, 0, len(rt.order))
	for _, name := range rt.order {
		sh := rt.shards[name]
		sig := ShardSignal{
			Name:        name,
			State:       sh.state.String(),
			Incarnation: sh.incarnation,
			VirtualS:    sh.gw.VirtualNow(),
			Inflight:    sh.inflight.Load(),
			Snap:        sh.gw.Snapshot(),
		}
		if sh.state.serving() || sh.state == shardDraining {
			sig.Health = sh.gw.Health()
		}
		out = append(out, sig)
	}
	return out
}

// TenantQueues reports each tenant's fairness-queue row, in tenant-name
// order.
func (rt *Router) TenantQueues() []serve.TenantQueueStatus {
	rt.qmu.Lock()
	defer rt.qmu.Unlock()
	out := make([]serve.TenantQueueStatus, 0, len(rt.drr.order))
	for _, tq := range rt.drr.order {
		out = append(out, serve.TenantQueueStatus{
			Tenant:    tq.name,
			Weight:    tq.weight,
			Queued:    tq.size(),
			Admitted:  tq.admitted,
			Shed:      tq.shed,
			Depth:     rt.queueDepthLocked(tq),
			MaxVWaitS: tq.maxVWaitS,
		})
	}
	return out
}

// --- planner actuators -----------------------------------------------------
//
// The capacity planner's narrow setters. Each is clamped, takes effect at
// the next admission or dispatch decision (never mid-request), and is safe
// to call while traffic flows.

// Inflight returns the router-dispatched requests currently in flight — the
// gauge the reconfiguration invariants are asserted against.
func (rt *Router) Inflight() int64 { return rt.inflight.Load() }

// GlobalBudget returns the current cross-shard in-flight budget.
func (rt *Router) GlobalBudget() int { return int(rt.budget.Load()) }

// SetGlobalBudget retunes the cross-shard in-flight budget (clamped to >= 1)
// and returns the applied value. Shrinking below the current in-flight count
// sheds nothing: dispatch simply pauses until completions drain under the
// new bound, so no admitted request is stranded or double-terminated.
func (rt *Router) SetGlobalBudget(n int) int {
	if n < 1 {
		n = 1
	}
	rt.budget.Store(int64(n))
	rt.wakeUp()
	return n
}

// SetTenantWeight retunes one tenant's DRR weight (clamped to >= 1). Stale
// deficit above the new weight is forfeited so an old generous weight cannot
// linger as burst credit.
func (rt *Router) SetTenantWeight(tenant string, weight int) error {
	if weight < 1 {
		weight = 1
	}
	rt.qmu.Lock()
	defer rt.qmu.Unlock()
	tq := rt.drr.queue(tenant)
	if tq == nil {
		return fmt.Errorf("%w: %q", ErrUnknownTenant, tenant)
	}
	tq.weight = weight
	if tq.deficit > weight {
		tq.deficit = weight
	}
	return nil
}

// SetTenantQueueDepth retunes one tenant's queue bound (clamped to >= 1).
// Shrinking below the current occupancy evicts the excess immediately under
// the router's shed policy (oldest-first for ShedOldest, newest-first
// otherwise); every evicted request gets a terminal shed response and is
// counted exactly once. Returns the number evicted.
func (rt *Router) SetTenantQueueDepth(tenant string, depth int) (int, error) {
	if depth < 1 {
		depth = 1
	}
	rt.qmu.Lock()
	tq := rt.drr.queue(tenant)
	if tq == nil {
		rt.qmu.Unlock()
		return 0, fmt.Errorf("%w: %q", ErrUnknownTenant, tenant)
	}
	tq.depth = depth
	var evicted []*rreq
	for tq.size() > depth {
		var victim *rreq
		if rt.cfg.Shed == serve.ShedOldest {
			victim = tq.popOldest()
		} else {
			victim = tq.popNewest()
		}
		rt.drr.queued--
		tq.shed++
		rt.met.shed.Add(1)
		evicted = append(evicted, victim)
	}
	rt.qmu.Unlock()
	for _, v := range evicted {
		v.resp <- rt.shedResponse(v)
	}
	return len(evicted), nil
}

// SetAdmissionWait retunes one tenant's admission gate: arrival-stamped
// requests are shed while the estimated backlog (MinBacklogS) exceeds
// maxVWaitS. Zero (or negative) removes the gate.
func (rt *Router) SetAdmissionWait(tenant string, maxVWaitS float64) error {
	if maxVWaitS < 0 {
		maxVWaitS = 0
	}
	rt.qmu.Lock()
	defer rt.qmu.Unlock()
	tq := rt.drr.queue(tenant)
	if tq == nil {
		return fmt.Errorf("%w: %q", ErrUnknownTenant, tenant)
	}
	tq.maxVWaitS = maxVWaitS
	gated := false
	for _, q := range rt.drr.order {
		if q.maxVWaitS > 0 {
			gated = true
			break
		}
	}
	rt.gated.Store(gated)
	return nil
}

// MinBacklogS estimates how long a request stamped with the given virtual
// arrival would wait before any lane could start it: the minimum active-lane
// clock across healthy shards minus the arrival, floored at zero.
func (rt *Router) MinBacklogS(arrivalS float64) float64 {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	min := math.Inf(1)
	for _, name := range rt.order {
		sh := rt.shards[name]
		if sh.state != shardHealthy {
			continue
		}
		if c := sh.gw.MinLaneClock(); c < min {
			min = c
		}
	}
	if math.IsInf(min, 1) {
		return 0
	}
	if b := min - arrivalS; b > 0 {
		return b
	}
	return 0
}

// TotalLanes sums worker lanes across healthy shards (active or not) — the
// planner's scale-out ceiling.
func (rt *Router) TotalLanes() int {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	total := 0
	for _, name := range rt.order {
		if sh := rt.shards[name]; sh.state == shardHealthy {
			total += sh.gw.LaneCount()
		}
	}
	return total
}

// ActiveLanes sums the active worker-pool sizes across healthy shards.
func (rt *Router) ActiveLanes() int {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	total := 0
	for _, name := range rt.order {
		if sh := rt.shards[name]; sh.state == shardHealthy {
			total += sh.gw.ActiveLanes()
		}
	}
	return total
}

// SetActiveLanes distributes a total active-lane count over the healthy
// shards — at least one lane per shard, round-robin in shard-name order for
// the rest, clamped to each shard's lane count — and returns the applied
// total. This is the planner's worker-pool actuator: deactivated lanes
// drain what they hold and then idle, so shrinking never preempts a request.
func (rt *Router) SetActiveLanes(total int) int {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	type target struct {
		sh    *shard
		lanes int // capacity
		want  int
	}
	var ts []target
	capacity := 0
	for _, name := range rt.order {
		if sh := rt.shards[name]; sh.state == shardHealthy {
			n := sh.gw.LaneCount()
			ts = append(ts, target{sh: sh, lanes: n, want: 0})
			capacity += n
		}
	}
	if len(ts) == 0 {
		return 0
	}
	if total < len(ts) {
		total = len(ts)
	}
	if total > capacity {
		total = capacity
	}
	remaining := total
	for remaining > 0 {
		progressed := false
		for i := range ts {
			if remaining == 0 {
				break
			}
			if ts[i].want < ts[i].lanes {
				ts[i].want++
				remaining--
				progressed = true
			}
		}
		if !progressed {
			break
		}
	}
	applied := 0
	for _, t := range ts {
		applied += t.sh.gw.SetActiveLanes(t.want)
	}
	return applied
}

// PromText renders the merged shard metrics plus the router's own series —
// the admin endpoint's /metrics body for a sharded deployment.
func (rt *Router) PromText() []byte {
	body := serve.PromText(rt.Snapshot(), rt.Health())
	var p obs.Prom
	rs := rt.met.snapshot()
	p.Counter("autoscale_router_submitted_total", "Requests entering cross-shard admission.", float64(rs.Submitted))
	p.Counter("autoscale_router_dispatched_total", "Requests dispatched to a shard.", float64(rs.Dispatched))
	p.Counter("autoscale_router_shed_total", "Requests shed at tenant-queue admission.", float64(rs.Shed))
	p.Counter("autoscale_router_failed_total", "Requests terminated by the router.", float64(rs.Failed))
	p.Counter("autoscale_router_completed_total", "Shard responses relayed to callers.", float64(rs.Completed))
	p.Counter("autoscale_router_failovers_total", "Re-dispatches after a shard bounce.", float64(rs.Failovers))
	p.Counter("autoscale_router_rehomed_devices_total", "Device lanes moved to a surviving shard.", float64(rs.RehomedDevices))
	p.Counter("autoscale_router_shard_kills_total", "Shards crashed (drills or KillShard).", float64(rs.ShardKills))
	p.Counter("autoscale_router_shard_drains_total", "Shards gracefully drained.", float64(rs.ShardDrains))
	p.Counter("autoscale_router_shard_cordons_total", "Shards cordoned by supervision.", float64(rs.Cordons))
	p.Counter("autoscale_router_shard_uncordons_total", "Cordons lifted.", float64(rs.Uncordons))
	p.Counter("autoscale_router_shard_revives_total", "Shards restarted from the factory.", float64(rs.Revives))
	p.Gauge("autoscale_router_inflight", "Router-dispatched requests in flight.", float64(rt.inflight.Load()))
	alive := 0
	for _, s := range rt.ShardStatuses() {
		if s.State == "healthy" {
			alive++
		}
		p.Gauge("autoscale_router_shard_state", "Shard lifecycle: 0 healthy, 1 draining, 2 drained, 3 dead, 4 cordoned.",
			shardStateValue(s.State), "shard", s.Name)
		p.Gauge("autoscale_router_shard_devices", "Device lanes homed on the shard.",
			float64(len(s.Devices)), "shard", s.Name)
	}
	p.Gauge("autoscale_router_shards_alive", "Healthy shards.", float64(alive))
	for _, t := range rt.TenantQueues() {
		p.Gauge("autoscale_router_tenant_weight", "Configured DRR weight.", float64(t.Weight), "tenant", t.Tenant)
		p.Gauge("autoscale_router_tenant_queued", "Requests waiting in the tenant queue.", float64(t.Queued), "tenant", t.Tenant)
		p.Counter("autoscale_router_tenant_admitted_total", "Requests admitted per tenant.", float64(t.Admitted), "tenant", t.Tenant)
		p.Counter("autoscale_router_tenant_shed_total", "Requests shed per tenant.", float64(t.Shed), "tenant", t.Tenant)
	}
	return append(body, p.Bytes()...)
}

func shardStateValue(state string) float64 {
	switch state {
	case "draining":
		return 1
	case "drained":
		return 2
	case "dead":
		return 3
	case "cordoned":
		return 4
	}
	return 0
}

// policyNodes exposes the union of live shards' workers — filtered to each
// device's current home — as one federation node set.
func (rt *Router) policyNodes() []policy.Node {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	var nodes []policy.Node
	for _, name := range rt.order {
		sh := rt.shards[name]
		if !sh.state.serving() && sh.state != shardDraining {
			continue
		}
		for _, n := range sh.gw.PolicyNodes() {
			if rt.homes[n.Device] == name {
				nodes = append(nodes, n)
			}
		}
	}
	return nodes
}

// policySyncer lazily builds the cross-shard federation syncer.
func (rt *Router) policySyncer() (*policy.Syncer, error) {
	if rt.cfg.Checkpoints == nil {
		return nil, errors.New("router: no checkpoint store configured")
	}
	rt.syncMu.Lock()
	defer rt.syncMu.Unlock()
	if rt.syncer == nil {
		cfg := rt.cfg.PolicySync
		if cfg.Unreachable == nil && rt.cfg.Faults != nil {
			// Scripted sync partitions: the lane serves but the cross-shard
			// syncer cannot reach it while its window holds.
			cfg.Unreachable = func(dev string) bool {
				return rt.cfg.Faults.Partitioned(dev, rt.VirtualNow())
			}
		}
		s, err := policy.NewSyncer(rt.cfg.Checkpoints, rt.policyNodes, cfg)
		if err != nil {
			return nil, fmt.Errorf("router: policy sync: %w", err)
		}
		rt.syncer = s
	}
	return rt.syncer, nil
}

// VirtualNow is the fleet's virtual clock: the maximum shard clock across
// serving and draining shards (dead shards' frozen clocks are ignored).
func (rt *Router) VirtualNow() float64 {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	max := 0.0
	for _, name := range rt.order {
		sh := rt.shards[name]
		if !sh.state.serving() && sh.state != shardDraining {
			continue
		}
		if v := sh.gw.VirtualNow(); v > max {
			max = v
		}
	}
	return max
}

// SyncPolicies runs one cross-shard federation pass synchronously:
// checkpoint every live worker fleet-wide, merge compatibility groups, and
// warm-start blank engines — the cluster's learning plane in one call.
func (rt *Router) SyncPolicies() (policy.Report, error) {
	if rt.closed.Load() {
		return policy.Report{}, serve.ErrClosed
	}
	s, err := rt.policySyncer()
	if err != nil {
		return policy.Report{}, err
	}
	return s.SyncOnce(), nil
}

// StartPolicySync launches the background cross-shard federation loop.
func (rt *Router) StartPolicySync() error {
	s, err := rt.policySyncer()
	if err != nil {
		return err
	}
	s.Start()
	return nil
}

// StopPolicySync halts the background federation loop (no-op when not
// running).
func (rt *Router) StopPolicySync() {
	rt.syncMu.Lock()
	s := rt.syncer
	rt.syncMu.Unlock()
	if s != nil {
		s.Stop()
	}
}

// Shutdown stops admission, lets the dispatcher drain the tenant queues
// (queued requests still route and execute; shard admission and deadline
// rules still apply), waits for every in-flight pipe, stops the dispatcher
// and the federation loop, then gracefully shuts down every still-healthy
// shard — which drains shard queues and persists final checkpoints. The
// context bounds the whole drain.
func (rt *Router) Shutdown(ctx context.Context) error {
	if !rt.closed.CompareAndSwap(false, true) {
		return serve.ErrClosed
	}

	// Quiet means: tenant queues empty and nothing in flight. Pipes requeue
	// failovers before dropping the in-flight gauge, so this check cannot
	// miss work in motion.
	for {
		rt.qmu.Lock()
		queued := rt.drr.queued
		rt.qmu.Unlock()
		if queued == 0 && rt.inflight.Load() == 0 {
			break
		}
		rt.wakeUp()
		select {
		case <-ctx.Done():
			return fmt.Errorf("router: drain interrupted: %w", ctx.Err())
		case <-time.After(time.Millisecond):
		}
	}
	rt.pipeWG.Wait()
	close(rt.stopc)
	rt.dispWG.Wait()
	rt.StopPolicySync()

	rt.mu.Lock()
	var toClose []*shard
	for _, name := range rt.order {
		if sh := rt.shards[name]; sh.state.serving() {
			sh.state = shardDrained
			toClose = append(toClose, sh)
		}
	}
	rt.mu.Unlock()

	var errs []error
	for _, sh := range toClose {
		if err := sh.gw.Shutdown(ctx); err != nil && !errors.Is(err, serve.ErrClosed) {
			errs = append(errs, fmt.Errorf("router: shard %s: %w", sh.name, err))
		}
	}
	return errors.Join(errs...)
}
