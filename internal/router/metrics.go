package router

import "sync/atomic"

// routerMetrics are the routing tier's own counters — everything the shards
// cannot see because it happens above them: cross-shard admission, fairness
// shedding, failover re-dispatch, and shard lifecycle. The per-request
// serving metrics stay in each shard's registry and are merged on snapshot.
type routerMetrics struct {
	submitted   atomic.Uint64
	dispatched  atomic.Uint64
	shed        atomic.Uint64
	failed      atomic.Uint64
	completed   atomic.Uint64
	failovers   atomic.Uint64
	rehomed     atomic.Uint64
	shardKills  atomic.Uint64
	shardDrains atomic.Uint64
	cordons     atomic.Uint64
	uncordons   atomic.Uint64
	revives     atomic.Uint64
}

// RouterSnapshot is a point-in-time copy of the routing tier's counters.
type RouterSnapshot struct {
	// Submitted counts requests entering cross-shard admission.
	Submitted uint64 `json:"submitted"`
	// Dispatched counts requests handed to a shard gateway.
	Dispatched uint64 `json:"dispatched"`
	// Shed counts requests sacrificed at tenant-queue admission.
	Shed uint64 `json:"shed"`
	// Failed counts requests the router itself terminated (unknown tenant or
	// device, no healthy shard, failover budget exhausted).
	Failed uint64 `json:"failed"`
	// Completed counts requests whose shard response was relayed to the
	// caller (any shard-level status). Exactly-once conservation holds at
	// the router: Submitted == Shed + Failed + Completed once quiet.
	Completed uint64 `json:"completed"`
	// Failovers counts re-dispatches of requests bounced by a dead or
	// draining shard.
	Failovers uint64 `json:"failovers"`
	// RehomedDevices counts device lanes moved to a surviving shard.
	RehomedDevices uint64 `json:"rehomed_devices"`
	// ShardKills / ShardDrains count lifecycle transitions.
	ShardKills  uint64 `json:"shard_kills"`
	ShardDrains uint64 `json:"shard_drains"`
	// Cordons / Uncordons / Revives count supervisor-driven lifecycle
	// transitions: placement holds and shard restarts.
	Cordons   uint64 `json:"cordons"`
	Uncordons uint64 `json:"uncordons"`
	Revives   uint64 `json:"revives"`
}

func (m *routerMetrics) snapshot() RouterSnapshot {
	return RouterSnapshot{
		Submitted:      m.submitted.Load(),
		Dispatched:     m.dispatched.Load(),
		Shed:           m.shed.Load(),
		Failed:         m.failed.Load(),
		Completed:      m.completed.Load(),
		Failovers:      m.failovers.Load(),
		RehomedDevices: m.rehomed.Load(),
		ShardKills:     m.shardKills.Load(),
		ShardDrains:    m.shardDrains.Load(),
		Cordons:        m.cordons.Load(),
		Uncordons:      m.uncordons.Load(),
		Revives:        m.revives.Load(),
	}
}
