package router

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"

	"autoscale/internal/core"
	"autoscale/internal/dnn"
	"autoscale/internal/policy"
	"autoscale/internal/serve"
	"autoscale/internal/sim"
	"autoscale/internal/soc"
	"autoscale/internal/trace"
)

func testEngine(t testing.TB, dev *soc.Device, seed int64, cfg core.Config) *core.Engine {
	t.Helper()
	e, err := core.NewEngine(sim.NewWorld(dev, seed), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func conds() sim.Conditions { return sim.Conditions{RSSIWLAN: -55, RSSIP2P: -55} }

// testShard builds one named gateway shard with one Mi8Pro-backed lane per
// name, seeded seedBase, seedBase+1, ... in lane order.
func testShard(t testing.TB, name string, lanes []string, seedBase int64, gcfg serve.Config) *serve.Gateway {
	t.Helper()
	backends := make([]serve.Backend, 0, len(lanes))
	for i, lane := range lanes {
		backends = append(backends, serve.Backend{
			Device: lane,
			Engine: testEngine(t, soc.Mi8Pro(), seedBase+int64(i), core.DefaultConfig()),
		})
	}
	gcfg.Name = name
	gw, err := serve.New(backends, gcfg)
	if err != nil {
		t.Fatal(err)
	}
	return gw
}

// --- ring / placement ------------------------------------------------------

// TestRingDeterministic checks the ring is a pure function of the name set:
// input order must not matter, and lookups must be stable.
func TestRingDeterministic(t *testing.T) {
	a := newRing([]string{"shard-a", "shard-b", "shard-c"}, 64)
	b := newRing([]string{"shard-c", "shard-a", "shard-b"}, 64)
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("device-%d", i)
		if got, want := a.lookup(key), b.lookup(key); got != want {
			t.Fatalf("ring order-dependent: %q -> %q vs %q", key, got, want)
		}
	}
	if got := (&ring{}).lookup("x"); got != "" {
		t.Fatalf("empty ring lookup = %q, want empty", got)
	}
}

// TestRingMinimalMovement checks the consistent-hash property re-homing
// relies on: removing one shard moves only that shard's keys.
func TestRingMinimalMovement(t *testing.T) {
	full := newRing([]string{"shard-a", "shard-b", "shard-c"}, 64)
	survivors := newRing([]string{"shard-a", "shard-c"}, 64)
	moved := 0
	for i := 0; i < 300; i++ {
		key := fmt.Sprintf("device-%d", i)
		before := full.lookup(key)
		after := survivors.lookup(key)
		if before != "shard-b" {
			if after != before {
				t.Fatalf("key %q moved %q -> %q though its shard survived", key, before, after)
			}
			continue
		}
		moved++
		if after == "shard-b" {
			t.Fatalf("key %q still owned by the removed shard", key)
		}
	}
	if moved == 0 {
		t.Fatal("no key was owned by the removed shard; test is vacuous")
	}
}

func TestLoadBound(t *testing.T) {
	cases := []struct {
		factor          float64
		devices, shards int
		want            int
	}{
		{1.25, 10, 4, 4}, // ceil(12.5/4) = ceil(3.125)
		{1.0, 10, 4, 3},  // ceil(2.5)
		{0.5, 10, 4, 3},  // sub-1 factors clamp to the even split
		{1.25, 1, 4, 1},
		{1.25, 0, 0, 0},
	}
	for _, c := range cases {
		if got := loadBound(c.factor, c.devices, c.shards); got != c.want {
			t.Errorf("loadBound(%g, %d, %d) = %d, want %d", c.factor, c.devices, c.shards, got, c.want)
		}
	}
}

// TestPlaceDevicesBounded checks every device lands somewhere and no shard
// exceeds the bounded-load ceiling, regardless of device input order.
func TestPlaceDevicesBounded(t *testing.T) {
	devices := make([]string, 20)
	for i := range devices {
		devices[i] = fmt.Sprintf("device-%d", i)
	}
	shards := []string{"shard-0", "shard-1", "shard-2", "shard-3"}
	homes := PlaceDevices(devices, shards, 0, 1.0)
	if len(homes) != len(devices) {
		t.Fatalf("placed %d of %d devices", len(homes), len(devices))
	}
	counts := map[string]int{}
	for dev, s := range homes {
		if dev == "" || s == "" {
			t.Fatalf("bad placement %q -> %q", dev, s)
		}
		counts[s]++
	}
	bound := loadBound(1.0, len(devices), len(shards))
	for s, n := range counts {
		if n > bound {
			t.Errorf("shard %s holds %d devices, bound %d", s, n, bound)
		}
	}
	// Reversed input must give the identical assignment.
	rev := make([]string, len(devices))
	for i, d := range devices {
		rev[len(devices)-1-i] = d
	}
	homes2 := PlaceDevices(rev, shards, 0, 1.0)
	for dev, s := range homes {
		if homes2[dev] != s {
			t.Fatalf("placement input-order dependent: %q -> %q vs %q", dev, s, homes2[dev])
		}
	}
}

// --- DRR fairness ----------------------------------------------------------

func drrReq(tenant string) *rreq {
	return &rreq{req: serve.Request{Tenant: tenant}, resp: make(chan serve.Response, 1)}
}

// TestDRRProportions checks the scheduler's core contract: under backlog,
// dispatches per rotation match the configured weights exactly.
func TestDRRProportions(t *testing.T) {
	d := newDRR([]Tenant{{"gold", 4}, {"silver", 2}, {"best", 1}})
	const perTenant = 70
	for i := 0; i < perTenant; i++ {
		for _, name := range []string{"gold", "silver", "best"} {
			d.push(d.queue(name), drrReq(name))
		}
	}
	counts := map[string]int{}
	for i := 0; i < 7*10; i++ { // ten full rotations
		r := d.pick()
		if r == nil {
			t.Fatalf("pick %d returned nil with %d queued", i, d.queued)
		}
		counts[r.req.Tenant]++
	}
	if counts["gold"] != 40 || counts["silver"] != 20 || counts["best"] != 10 {
		t.Fatalf("DRR split %v, want gold=40 silver=20 best=10", counts)
	}
}

// TestDRRNoIdleCredit checks an idle tenant cannot bank deficit into a burst:
// after gold drains and best idles, a refilled best still alternates at its
// weight rather than spending accrued credit.
func TestDRRNoIdleCredit(t *testing.T) {
	d := newDRR([]Tenant{{"gold", 4}, {"best", 1}})
	for i := 0; i < 8; i++ {
		d.push(d.queue("gold"), drrReq("gold"))
	}
	for i := 0; i < 8; i++ {
		if r := d.pick(); r == nil || r.req.Tenant != "gold" {
			t.Fatalf("pick %d: %+v, want gold", i, r)
		}
	}
	// best idled through two rotations; its deficit must be forfeit.
	if got := d.queue("best").deficit; got != 0 {
		t.Fatalf("idle tenant banked deficit %d", got)
	}
	for i := 0; i < 10; i++ {
		d.push(d.queue("gold"), drrReq("gold"))
		d.push(d.queue("best"), drrReq("best"))
	}
	counts := map[string]int{}
	for i := 0; i < 10; i++ {
		counts[d.pick().req.Tenant]++
	}
	if counts["best"] > 4 {
		t.Fatalf("idle tenant burst to %d of 10 picks at weight 1 vs 4", counts["best"])
	}
}

func TestDRREmpty(t *testing.T) {
	d := newDRR([]Tenant{{"gold", 4}})
	if r := d.pick(); r != nil {
		t.Fatalf("pick on empty scheduler = %+v", r)
	}
	if tq := d.queue("nope"); tq != nil {
		t.Fatal("unknown tenant resolved to a queue")
	}
	// Weights below 1 are raised so the tenant still makes progress.
	d = newDRR([]Tenant{{"zero", 0}})
	d.push(d.queue("zero"), drrReq("zero"))
	if r := d.pick(); r == nil {
		t.Fatal("weight-0 tenant starved")
	}
}

// --- admission (white-box: no dispatcher, so queues hold still) ------------

// pausedRouter builds a Router whose dispatcher never runs, so admission
// decisions can be observed deterministically.
func pausedRouter(cfg Config) *Router {
	tenants := append([]Tenant(nil), cfg.Tenants...)
	hasDefault := false
	for _, t := range tenants {
		if t.Name == DefaultTenant {
			hasDefault = true
		}
	}
	if !hasDefault {
		tenants = append(tenants, Tenant{Name: DefaultTenant, Weight: 1})
	}
	rt := &Router{
		cfg:          cfg,
		tenantDepth:  cfg.tenantQueueDepth(),
		maxFailovers: cfg.maxFailovers(),
		shards:       map[string]*shard{},
		homes:        map[string]string{},
		drr:          newDRR(tenants),
		wake:         make(chan struct{}, 1),
		stopc:        make(chan struct{}),
	}
	rt.budget.Store(int64(cfg.globalBudget()))
	return rt
}

func TestSubmitShedNewest(t *testing.T) {
	rt := pausedRouter(Config{TenantQueueDepth: 2, Shed: serve.ShedNewest})
	m := dnn.MustByName("MobileNet v3")
	var chans []<-chan serve.Response
	for i := 0; i < 3; i++ {
		ch, err := rt.Submit(serve.Request{Model: m, Conditions: conds()})
		if err != nil {
			t.Fatal(err)
		}
		chans = append(chans, ch)
	}
	select {
	case r := <-chans[2]:
		if r.Status != serve.StatusShed || !errors.Is(r.Err, serve.ErrQueueFull) {
			t.Fatalf("overflow arrival got %+v, want shed", r)
		}
	default:
		t.Fatal("ShedNewest did not reject the overflow arrival")
	}
	for i := 0; i < 2; i++ {
		select {
		case r := <-chans[i]:
			t.Fatalf("queued request %d terminated early: %+v", i, r)
		default:
		}
	}
	tqs := rt.TenantQueues()
	var def serve.TenantQueueStatus
	for _, tq := range tqs {
		if tq.Tenant == DefaultTenant {
			def = tq
		}
	}
	if def.Queued != 2 || def.Admitted != 2 || def.Shed != 1 {
		t.Fatalf("default tenant accounting %+v, want queued=2 admitted=2 shed=1", def)
	}
	if got := rt.RouterMetrics(); got.Submitted != 3 || got.Shed != 1 {
		t.Fatalf("router counters %+v", got)
	}
}

func TestSubmitShedOldest(t *testing.T) {
	rt := pausedRouter(Config{TenantQueueDepth: 2, Shed: serve.ShedOldest})
	m := dnn.MustByName("MobileNet v3")
	var chans []<-chan serve.Response
	for i := 0; i < 3; i++ {
		ch, err := rt.Submit(serve.Request{Model: m, Conditions: conds()})
		if err != nil {
			t.Fatal(err)
		}
		chans = append(chans, ch)
	}
	select {
	case r := <-chans[0]:
		if r.Status != serve.StatusShed {
			t.Fatalf("oldest request got %+v, want shed", r)
		}
	default:
		t.Fatal("ShedOldest did not evict the queue head")
	}
	select {
	case r := <-chans[2]:
		t.Fatalf("newest request terminated under ShedOldest: %+v", r)
	default:
	}
}

func TestSubmitUnknownTenant(t *testing.T) {
	rt := pausedRouter(Config{Tenants: []Tenant{{"gold", 4}}})
	ch, err := rt.Submit(serve.Request{Model: dnn.MustByName("MobileNet v3"), Tenant: "platinum"})
	if err != nil {
		t.Fatal(err)
	}
	r := <-ch
	if r.Status != serve.StatusFailed || !errors.Is(r.Err, ErrUnknownTenant) {
		t.Fatalf("unknown tenant got %+v", r)
	}
	if got := rt.RouterMetrics().Failed; got != 1 {
		t.Fatalf("failed counter %d, want 1", got)
	}
}

// --- router integration ----------------------------------------------------

func TestRouterValidation(t *testing.T) {
	if _, err := New(nil, Config{}); err == nil {
		t.Error("no shards accepted")
	}
	gwA := testShard(t, "a", []string{"lane-a"}, 1, serve.Config{})
	gwDup := testShard(t, "b", []string{"lane-a"}, 2, serve.Config{})
	if _, err := New([]ShardGateway{{"a", gwA}, {"b", gwDup}}, Config{}); err == nil {
		t.Error("duplicate device across shards accepted")
	}
	if _, err := New([]ShardGateway{{"", gwA}}, Config{}); err == nil {
		t.Error("empty shard name accepted")
	}
	if _, err := New([]ShardGateway{{"a", gwA}, {"a", gwA}}, Config{}); err == nil {
		t.Error("duplicate shard name accepted")
	}
}

func TestRouterPinnedAndUnpinned(t *testing.T) {
	gwA := testShard(t, "shard-a", []string{"lane-a"}, 1, serve.Config{})
	gwB := testShard(t, "shard-b", []string{"lane-b"}, 2, serve.Config{})
	rt, err := New([]ShardGateway{{"shard-a", gwA}, {"shard-b", gwB}}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Shutdown(context.Background()) //nolint:errcheck

	m := dnn.MustByName("MobileNet v3")
	// Pinned requests land on the device's home shard.
	for i := 0; i < 10; i++ {
		r, err := rt.Do(serve.Request{Model: m, Conditions: conds(), Device: "lane-b"})
		if err != nil || r.Status != serve.StatusServed {
			t.Fatalf("pinned request %d: %v %+v", i, err, r)
		}
		if r.Device != "lane-b" {
			t.Fatalf("pinned request served by %q", r.Device)
		}
	}
	if served := gwB.Snapshot().Served; served != 10 {
		t.Fatalf("home shard served %d of 10 pinned requests", served)
	}
	if served := gwA.Snapshot().Served; served != 0 {
		t.Fatalf("wrong shard served %d pinned requests", served)
	}

	// Unpinned requests spread over healthy shards (rotating tiebreak).
	for i := 0; i < 40; i++ {
		if r, err := rt.Do(serve.Request{Model: m, Conditions: conds()}); err != nil || r.Status != serve.StatusServed {
			t.Fatalf("unpinned request %d: %v %+v", i, err, r)
		}
	}
	if a, b := gwA.Snapshot().Served, gwB.Snapshot().Served; a == 0 || b <= 10 {
		t.Fatalf("unpinned load did not spread: shard-a=%d shard-b=%d", a, b)
	}

	// An unknown pinned device fails fast at the router.
	r, _ := rt.Do(serve.Request{Model: m, Conditions: conds(), Device: "lane-z"})
	if r.Status != serve.StatusFailed || !errors.Is(r.Err, serve.ErrUnknownDevice) {
		t.Fatalf("unknown device got %+v", r)
	}

	if got := rt.Devices(); len(got) != 2 || got[0] != "lane-a" || got[1] != "lane-b" {
		t.Fatalf("Devices() = %v", got)
	}
	if home := rt.Home("lane-a"); home != "shard-a" {
		t.Fatalf("Home(lane-a) = %q", home)
	}
	if h := rt.Health(); len(h) != 2 {
		t.Fatalf("Health() covers %d devices, want 2", len(h))
	}
}

func TestRouterSubmitAfterShutdown(t *testing.T) {
	gw := testShard(t, "shard-a", []string{"lane-a"}, 1, serve.Config{})
	rt, err := New([]ShardGateway{{"shard-a", gw}}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !rt.Closed() {
		t.Fatal("router not closed after Shutdown")
	}
	if _, err := rt.Submit(serve.Request{Model: dnn.MustByName("MobileNet v3")}); !errors.Is(err, serve.ErrClosed) {
		t.Fatalf("post-shutdown submit: %v", err)
	}
	if err := rt.Shutdown(context.Background()); !errors.Is(err, serve.ErrClosed) {
		t.Fatalf("double shutdown: %v", err)
	}
}

// TestRouterDrainRehome retires a shard gracefully: a pre-drain federation
// pass freshens checkpoints, the shard's lanes re-home onto the survivor with
// checkpoint warm-start, and pinned traffic to the moved lanes keeps flowing.
func TestRouterDrainRehome(t *testing.T) {
	store, err := policy.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	gcfg := serve.Config{Checkpoints: store}
	gwA := testShard(t, "shard-a", []string{"lane-a0", "lane-a1"}, 1, gcfg)
	gwB := testShard(t, "shard-b", []string{"lane-b0", "lane-b1"}, 3, gcfg)
	seeds := map[string]int64{"lane-a0": 1, "lane-a1": 2, "lane-b0": 3, "lane-b1": 4}
	rt, err := New([]ShardGateway{{"shard-a", gwA}, {"shard-b", gwB}}, Config{
		Checkpoints: store,
		EngineFactory: func(lane string) (*core.Engine, error) {
			seed, ok := seeds[lane]
			if !ok {
				return nil, fmt.Errorf("unknown lane %q", lane)
			}
			return core.NewEngine(sim.NewWorld(soc.Mi8Pro(), seed), core.DefaultConfig())
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Shutdown(context.Background()) //nolint:errcheck

	m := dnn.MustByName("MobileNet v3")
	for i := 0; i < 40; i++ {
		dev := []string{"lane-a0", "lane-a1", "lane-b0", "lane-b1"}[i%4]
		if r, err := rt.Do(serve.Request{Model: m, Conditions: conds(), Device: dev}); err != nil || r.Status != serve.StatusServed {
			t.Fatalf("warmup %d: %v %+v", i, err, r)
		}
	}

	if err := rt.DrainShard(context.Background(), "shard-b"); err != nil {
		t.Fatal(err)
	}
	met := rt.RouterMetrics()
	if met.ShardDrains != 1 || met.RehomedDevices != 2 {
		t.Fatalf("drain accounting %+v, want 1 drain, 2 re-homed", met)
	}
	for _, lane := range []string{"lane-b0", "lane-b1"} {
		if home := rt.Home(lane); home != "shard-a" {
			t.Fatalf("lane %s homed on %q after drain", lane, home)
		}
	}
	// The survivor warm-started the moved lanes from their fresh checkpoints.
	warm := gwA.WarmStarts()
	for _, lane := range []string{"lane-b0", "lane-b1"} {
		if gen, ok := warm[lane]; !ok || gen < 1 {
			t.Fatalf("lane %s warm-start generation %d (present=%v)", lane, gen, ok)
		}
	}
	// Pinned traffic to the moved lanes keeps flowing on the survivor.
	for i := 0; i < 6; i++ {
		r, err := rt.Do(serve.Request{Model: m, Conditions: conds(), Device: "lane-b0"})
		if err != nil || r.Status != serve.StatusServed {
			t.Fatalf("post-drain pinned %d: %v %+v", i, err, r)
		}
	}
	// Double drain is an error; the drained shard's served history survives
	// in the merged snapshot.
	if err := rt.DrainShard(context.Background(), "shard-b"); err == nil {
		t.Fatal("double drain accepted")
	}
	if snap := rt.Snapshot(); snap.Served < 46 {
		t.Fatalf("merged snapshot lost history: served=%d", snap.Served)
	}
	var states []string
	for _, s := range rt.ShardStatuses() {
		states = append(states, s.Name+"="+s.State)
	}
	if want := []string{"shard-a=healthy", "shard-b=drained"}; fmt.Sprint(states) != fmt.Sprint(want) {
		t.Fatalf("shard states %v, want %v", states, want)
	}
}

// TestRouterFailoverBudget bounces a pinned request off a gateway that died
// behind the router's back: each bounce consumes one failover, and the
// request fails once the budget is spent.
func TestRouterFailoverBudget(t *testing.T) {
	gwA := testShard(t, "shard-a", []string{"lane-a"}, 1, serve.Config{})
	gwB := testShard(t, "shard-b", []string{"lane-b"}, 2, serve.Config{})
	rt, err := New([]ShardGateway{{"shard-a", gwA}, {"shard-b", gwB}}, Config{MaxFailovers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Shutdown(context.Background()) //nolint:errcheck

	// Kill shard-b's gateway directly — the router still believes it is
	// healthy, so every dispatch of a lane-b request bounces.
	if err := gwB.Kill(); err != nil {
		t.Fatal(err)
	}
	r, _ := rt.Do(serve.Request{Model: dnn.MustByName("MobileNet v3"), Conditions: conds(), Device: "lane-b"})
	if r.Status != serve.StatusFailed {
		t.Fatalf("bounced request got %+v", r)
	}
	met := rt.RouterMetrics()
	if met.Failovers != 2 {
		t.Fatalf("failovers = %d, want the full budget of 2", met.Failovers)
	}
	if met.Failed != 1 {
		t.Fatalf("failed = %d, want 1", met.Failed)
	}
	// Unpinned traffic still flows through the survivor.
	if r, err := rt.Do(serve.Request{Model: dnn.MustByName("MobileNet v3"), Conditions: conds()}); err != nil || r.Status != serve.StatusServed {
		t.Fatalf("survivor request: %v %+v", err, r)
	}
}

// TestRouterKillLastShard checks requests fail fast, not hang, when no
// healthy shard remains.
func TestRouterKillLastShard(t *testing.T) {
	gw := testShard(t, "shard-a", []string{"lane-a"}, 1, serve.Config{})
	rt, err := New([]ShardGateway{{"shard-a", gw}}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Shutdown(context.Background()) //nolint:errcheck
	if err := rt.KillShard("shard-a"); err != nil {
		t.Fatal(err)
	}
	if err := rt.KillShard("shard-a"); err == nil {
		t.Fatal("double kill accepted")
	}
	if err := rt.KillShard("nope"); err == nil {
		t.Fatal("unknown shard kill accepted")
	}
	m := dnn.MustByName("MobileNet v3")
	r, _ := rt.Do(serve.Request{Model: m, Conditions: conds()})
	if r.Status != serve.StatusFailed || !errors.Is(r.Err, ErrNoHealthyShard) {
		t.Fatalf("unpinned with no shard got %+v", r)
	}
	r, _ = rt.Do(serve.Request{Model: m, Conditions: conds(), Device: "lane-a"})
	if r.Status != serve.StatusFailed {
		t.Fatalf("pinned with no shard got %+v", r)
	}
}

// TestRouterFairness is the acceptance criterion: under saturating load the
// per-tenant service split stays within 10% (relative) of the configured
// weights. The single shard's decision trace is the dispatch record: a
// mid-run window — after the backlog forms, before any tenant drains — must
// split 4:2:1.
func TestRouterFairness(t *testing.T) {
	var buf bytes.Buffer
	tw := trace.NewWriter(&buf)
	gw := testShard(t, "shard-a", []string{"lane-a"}, 1, serve.Config{QueueDepth: 64, Trace: tw})
	rt, err := New([]ShardGateway{{"shard-a", gw}}, Config{
		Tenants:          []Tenant{{"gold", 4}, {"silver", 2}, {"best", 1}},
		GlobalBudget:     8,
		TenantQueueDepth: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}

	m := dnn.MustByName("MobileNet v3")
	const perTenant = 600
	tenants := []string{"gold", "silver", "best"}
	var chans []<-chan serve.Response
	for i := 0; i < perTenant; i++ {
		for _, tn := range tenants {
			ch, err := rt.Submit(serve.Request{Model: m, Conditions: conds(), Tenant: tn})
			if err != nil {
				t.Fatal(err)
			}
			chans = append(chans, ch)
		}
	}
	for i, ch := range chans {
		if r := <-ch; r.Status != serve.StatusServed {
			t.Fatalf("request %d: %+v", i, r)
		}
	}
	if err := rt.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	records, err := trace.ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 3*perTenant {
		t.Fatalf("trace carries %d records for %d requests", len(records), 3*perTenant)
	}

	// Window [400, 1000): past the submission ramp, before gold (share 4/7
	// of 1800 -> exhausted near record 1050) runs dry.
	counts := map[string]int{}
	for _, rec := range records[400:1000] {
		counts[rec.Tenant]++
	}
	total := 600.0
	weights := map[string]float64{"gold": 4, "silver": 2, "best": 1}
	for tn, w := range weights {
		want := total * w / 7
		got := float64(counts[tn])
		if got < want*0.9 || got > want*1.1 {
			t.Errorf("tenant %s served %v of %v in-window requests, want %.0f±10%%", tn, got, total, want)
		}
	}
}
