package router

import (
	"fmt"
	"testing"
)

// BenchmarkRouterDispatch measures the routing tier's per-request hot path in
// isolation — one consistent-hash lookup plus one DRR enqueue/dequeue — which
// must stay near-zero-alloc so the tier adds no allocation pressure on top of
// the shards' own serving path.
func BenchmarkRouterDispatch(b *testing.B) {
	shards := make([]string, 8)
	for i := range shards {
		shards[i] = fmt.Sprintf("shard-%d", i)
	}
	r := newRing(shards, 64)
	d := newDRR([]Tenant{{"gold", 4}, {"silver", 2}, {"best", 1}})
	tenants := []string{"gold", "silver", "best"}
	devices := make([]string, 64)
	reqs := make([]*rreq, len(tenants))
	for i := range devices {
		devices[i] = fmt.Sprintf("device-%d", i)
	}
	for i, tn := range tenants {
		reqs[i] = drrReq(tn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r.lookup(devices[i&63]) == "" {
			b.Fatal("lookup missed")
		}
		rq := reqs[i%len(tenants)]
		d.push(d.queue(rq.req.Tenant), rq)
		if d.pick() == nil {
			b.Fatal("pick missed")
		}
	}
}

// BenchmarkRingLookup isolates the consistent-hash lookup (inlined FNV-1a
// plus binary search) — the placement primitive both admission and re-homing
// lean on.
func BenchmarkRingLookup(b *testing.B) {
	shards := make([]string, 16)
	for i := range shards {
		shards[i] = fmt.Sprintf("shard-%d", i)
	}
	r := newRing(shards, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r.lookup("device-42") == "" {
			b.Fatal("lookup missed")
		}
	}
}
