// Package power implements the energy models of Section IV-A of the paper,
// equations (1) through (4): utilization-based CPU energy, GPU energy,
// constant-power DSP energy, and the signal-strength-based energy model for
// offloading to connected systems. The simulator uses these equations as
// ground truth; AutoScale's Renergy estimator applies them to measured
// latencies with a small noise term (the paper reports 7.3% MAPE).
package power

import (
	"errors"

	"autoscale/internal/radio"
	"autoscale/internal/soc"
)

// Breakdown itemizes where one inference's energy went, in joules, on the
// *mobile device* side (the battery the paper's Monsoon meter drains).
type Breakdown struct {
	// Compute is engine busy energy (CPU/GPU/DSP busy power x busy time).
	Compute float64
	// Radio is the TX+RX energy of the wireless interface.
	Radio float64
	// Idle is platform and engine idle energy over the inference span.
	Idle float64
}

// Total returns the sum of all components.
func (b Breakdown) Total() float64 { return b.Compute + b.Radio + b.Idle }

// OnDevice computes eq (1)/(2)/(3): the energy of running an inference of
// the given busy duration on processor p at DVFS step, with the platform
// idling at platformIdleW for the same span. For CPUs and GPUs this is the
// utilization-based model with t_idle = 0 during inference (the engine is
// busy for the whole latency); for DSPs the busy power is the constant
// pre-measured P_DSP of eq (3).
func OnDevice(p *soc.Processor, step int, busySeconds, platformIdleW float64) (Breakdown, error) {
	if p == nil {
		return Breakdown{}, errors.New("power: nil processor")
	}
	if busySeconds < 0 {
		return Breakdown{}, errors.New("power: negative duration")
	}
	busyW := p.BusyPowerW(step)
	if p.Steps == 1 {
		// eq (3): single-step engines (DSP, NPU) draw their constant
		// pre-measured power.
		busyW = p.PeakBusyW
	}
	return Breakdown{
		Compute: busyW * busySeconds,
		Idle:    platformIdleW * busySeconds,
	}, nil
}

// Offload computes eq (4): the mobile-side energy of offloading over link l
// at signal strength rssi, where tTX/tRX are the measured transmit/receive
// times and total is the full inference latency (transfer plus remote
// compute plus wait). During the remote-compute window the device pays
// platform idle plus the radio's connected-idle power.
func Offload(l *radio.Link, rssi, tTX, tRX, total, platformIdleW float64) (Breakdown, error) {
	if l == nil {
		return Breakdown{}, errors.New("power: nil link")
	}
	if tTX < 0 || tRX < 0 || total < 0 {
		return Breakdown{}, errors.New("power: negative duration")
	}
	wait := total - tTX - tRX
	if wait < 0 {
		wait = 0
	}
	return Breakdown{
		Radio: l.TXPowerW(rssi)*tTX + l.RXPowerW(rssi)*tRX + l.IdleW*wait,
		Idle:  platformIdleW * total,
	}, nil
}
