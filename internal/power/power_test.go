package power

import (
	"math"
	"testing"

	"autoscale/internal/radio"
	"autoscale/internal/soc"
)

func TestOnDeviceCPU(t *testing.T) {
	cpu := soc.Mi8Pro().Processor(soc.CPU)
	const lat, idle = 0.1, 1.2
	bd, err := OnDevice(cpu, cpu.Steps-1, lat, idle)
	if err != nil {
		t.Fatal(err)
	}
	wantCompute := cpu.BusyPowerW(cpu.Steps-1) * lat
	if math.Abs(bd.Compute-wantCompute) > 1e-9 {
		t.Errorf("compute = %v, want %v", bd.Compute, wantCompute)
	}
	if math.Abs(bd.Idle-idle*lat) > 1e-9 {
		t.Errorf("idle = %v, want %v", bd.Idle, idle*lat)
	}
	if bd.Radio != 0 {
		t.Error("on-device execution must have no radio energy")
	}
	if math.Abs(bd.Total()-(bd.Compute+bd.Idle)) > 1e-12 {
		t.Error("total mismatch")
	}
}

func TestOnDeviceDVFSSavesPower(t *testing.T) {
	cpu := soc.Mi8Pro().Processor(soc.CPU)
	hi, err := OnDevice(cpu, cpu.Steps-1, 0.1, 0)
	if err != nil {
		t.Fatal(err)
	}
	lo, err := OnDevice(cpu, 0, 0.1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if lo.Compute >= hi.Compute {
		t.Error("lower DVFS step must draw less power for the same duration")
	}
}

func TestOnDeviceDSPConstantPower(t *testing.T) {
	dsp := soc.Mi8Pro().Processor(soc.DSP)
	bd, err := OnDevice(dsp, 0, 0.05, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Eq (3): E_DSP = P_DSP x latency with the constant pre-measured power.
	want := dsp.PeakBusyW * 0.05
	if math.Abs(bd.Compute-want) > 1e-9 {
		t.Errorf("DSP energy = %v, want %v", bd.Compute, want)
	}
}

func TestOnDeviceErrors(t *testing.T) {
	cpu := soc.Mi8Pro().Processor(soc.CPU)
	if _, err := OnDevice(nil, 0, 1, 0); err == nil {
		t.Error("nil processor should fail")
	}
	if _, err := OnDevice(cpu, 0, -1, 0); err == nil {
		t.Error("negative duration should fail")
	}
}

func TestOffloadEq4(t *testing.T) {
	l := radio.WiFi()
	const rssi, tTX, tRX, total, idle = -55.0, 0.02, 0.005, 0.05, 1.2
	bd, err := Offload(l, rssi, tTX, tRX, total, idle)
	if err != nil {
		t.Fatal(err)
	}
	wait := total - tTX - tRX
	wantRadio := l.TXPowerW(rssi)*tTX + l.RXPowerW(rssi)*tRX + l.IdleW*wait
	if math.Abs(bd.Radio-wantRadio) > 1e-9 {
		t.Errorf("radio = %v, want %v", bd.Radio, wantRadio)
	}
	if math.Abs(bd.Idle-idle*total) > 1e-9 {
		t.Errorf("idle = %v, want %v", bd.Idle, idle*total)
	}
	if bd.Compute != 0 {
		t.Error("offload must have no local compute energy")
	}
}

func TestOffloadWeakSignalCostsMore(t *testing.T) {
	l := radio.WiFi()
	strong, err := Offload(l, -55, 0.02, 0.005, 0.05, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	weak, err := Offload(l, -90, 0.02, 0.005, 0.05, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	if weak.Radio <= strong.Radio {
		t.Error("weak-signal transmission must cost more energy")
	}
}

func TestOffloadNegativeWaitClamped(t *testing.T) {
	l := radio.WiFi()
	// tTX + tRX exceeding total must not produce negative idle-radio time.
	bd, err := Offload(l, -55, 0.04, 0.03, 0.05, 0)
	if err != nil {
		t.Fatal(err)
	}
	minRadio := l.TXPowerW(-55)*0.04 + l.RXPowerW(-55)*0.03
	if bd.Radio < minRadio-1e-9 {
		t.Error("negative wait leaked into the radio energy")
	}
}

func TestOffloadErrors(t *testing.T) {
	if _, err := Offload(nil, -55, 0, 0, 0, 0); err == nil {
		t.Error("nil link should fail")
	}
	if _, err := Offload(radio.WiFi(), -55, -1, 0, 0, 0); err == nil {
		t.Error("negative duration should fail")
	}
}
