// Package core implements AutoScale itself (Section IV of the paper): the
// Table I state space with its discretization, the augmented action space of
// Section V-C, the reward of equation (5) with the Renergy estimator of
// equations (1)-(4), and the engine loop of Fig 8 — observe, select,
// execute, reward, update — on top of the Q-learning agent in internal/rl.
package core

import (
	"fmt"
	"strings"
	"sync/atomic"

	"autoscale/internal/cluster"
	"autoscale/internal/dnn"
	"autoscale/internal/rl"
	"autoscale/internal/sim"
)

// Feature identifies one of the eight Table I state features.
type Feature int

// The Table I features, in table order.
const (
	FeatConv  Feature = iota // SCONV: number of CONV layers
	FeatFC                   // SFC: number of FC layers
	FeatRC                   // SRC: number of RC layers
	FeatMAC                  // SMAC: number of MAC operations
	FeatCoCPU                // SCo_CPU: CPU utilization of co-running apps
	FeatCoMem                // SCo_MEM: memory usage of co-running apps
	FeatRSSIW                // SRSSI_W: RSSI of the wireless LAN
	FeatRSSIP                // SRSSI_P: RSSI of the peer-to-peer network
	numFeatures
)

var featureNames = [...]string{
	"SCONV", "SFC", "SRC", "SMAC", "SCo_CPU", "SCo_MEM", "SRSSI_W", "SRSSI_P",
}

// String returns the Table I feature name.
func (f Feature) String() string {
	if int(f) < len(featureNames) {
		return featureNames[f]
	}
	return fmt.Sprintf("Feature(%d)", int(f))
}

// NumFeatures is the number of Table I features.
const NumFeatures = int(numFeatures)

// Observation is one raw (pre-discretization) state sample.
type Observation struct {
	NumConv int
	NumFC   int
	NumRC   int
	MACs    float64
	// CoCPU and CoMem are co-runner utilizations in percent (0..100).
	CoCPU float64
	CoMem float64
	// RSSIW and RSSIP are signal strengths in dBm.
	RSSIW float64
	RSSIP float64
}

// ObservationOf assembles the observation for a model under conditions c —
// what AutoScale's monitor reads from the runtime libraries and kernel APIs.
func ObservationOf(m *dnn.Model, c sim.Conditions) Observation {
	return Observation{
		NumConv: m.NumConv(),
		NumFC:   m.NumFC(),
		NumRC:   m.NumRC(),
		MACs:    m.MACs(),
		CoCPU:   c.Load.CPUUtil * 100,
		CoMem:   c.Load.MemUtil * 100,
		RSSIW:   c.RSSIWLAN,
		RSSIP:   c.RSSIP2P,
	}
}

// value extracts the raw scalar for a feature.
func (o Observation) value(f Feature) float64 {
	switch f {
	case FeatConv:
		return float64(o.NumConv)
	case FeatFC:
		return float64(o.NumFC)
	case FeatRC:
		return float64(o.NumRC)
	case FeatMAC:
		return o.MACs
	case FeatCoCPU:
		return o.CoCPU
	case FeatCoMem:
		return o.CoMem
	case FeatRSSIW:
		return o.RSSIW
	case FeatRSSIP:
		return o.RSSIP
	}
	return 0
}

// StateSpace discretizes observations into dense state indices and their
// rl.State keys. Each feature has a Discretizer and may be disabled (for the
// paper's state-ablation study).
//
// StateSpace implements rl.Interner: every state is a mixed-radix number
// over the enabled feature bins (feature 0 most significant, so ascending
// index order equals ascending lexicographic key order), which lets the
// engine and agent run the decide path on int32 arithmetic with string keys
// rendered only at the checkpoint boundary.
type StateSpace struct {
	disc    [NumFeatures]*cluster.Discretizer
	enabled [NumFeatures]bool

	// cache holds the lazily built radix table and pre-rendered keys.
	// Disable invalidates it; readers rebuild on demand.
	cache atomic.Pointer[internCache]
}

// internCache is the immutable derived indexing state of a StateSpace.
type internCache struct {
	size  int
	radix [NumFeatures]int32 // 1 for disabled features
	keys  []rl.State         // nil when size > maxPrecomputedKeys
}

// maxPrecomputedKeys bounds the pre-rendered key table (the paper's space is
// 3,072 states; pathological fitted spaces fall back to on-demand rendering).
const maxPrecomputedKeys = 1 << 16

// NewStateSpace returns the paper's Table I discretization, which its
// authors obtained by running DBSCAN over observed feature samples:
//
//	SCONV: small(<30) medium(<50) large(<90) larger(>=90)
//	SFC:   small(<10) large(>=10)
//	SRC:   small(<10) large(>=10)
//	SMAC:  small(<1000M) medium(<2000M) large(>=2000M)
//	SCo_CPU / SCo_MEM: none(0) small(<25) medium(<75) large(<=100)
//	SRSSI_W / SRSSI_P: regular(>-80dBm) weak(<=-80dBm)
func NewStateSpace() *StateSpace {
	s := &StateSpace{}
	s.disc[FeatConv] = cluster.NewDiscretizer([]float64{30, 50, 90})
	s.disc[FeatFC] = cluster.NewDiscretizer([]float64{10})
	s.disc[FeatRC] = cluster.NewDiscretizer([]float64{10})
	s.disc[FeatMAC] = cluster.NewDiscretizer([]float64{1000e6, 2000e6})
	s.disc[FeatCoCPU] = cluster.NewDiscretizer([]float64{0.5, 25, 75})
	s.disc[FeatCoMem] = cluster.NewDiscretizer([]float64{0.5, 25, 75})
	// Table I counts exactly -80 dBm as weak ("<= -80"), so the cut sits
	// just above the boundary.
	s.disc[FeatRSSIW] = cluster.NewDiscretizer([]float64{-79.999})
	s.disc[FeatRSSIP] = cluster.NewDiscretizer([]float64{-79.999})
	for i := range s.enabled {
		s.enabled[i] = true
	}
	return s
}

// FitStateSpace rebuilds the discretization by clustering the given
// observation samples with DBSCAN, exactly as the paper derives Table I.
// Features whose samples do not split into at least two clusters fall back
// to the Table I cuts.
func FitStateSpace(samples []Observation) (*StateSpace, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("core: no samples to fit")
	}
	fallback := NewStateSpace()
	s := &StateSpace{}
	for i := range s.enabled {
		s.enabled[i] = true
	}
	// Per-feature DBSCAN radii scaled to the feature's natural units.
	eps := [NumFeatures]float64{
		FeatConv: 8, FeatFC: 4, FeatRC: 4, FeatMAC: 400e6,
		FeatCoCPU: 10, FeatCoMem: 10, FeatRSSIW: 5, FeatRSSIP: 5,
	}
	minPts := 2
	for f := Feature(0); f < numFeatures; f++ {
		vals := make([]float64, len(samples))
		for i, o := range samples {
			vals[i] = o.value(f)
		}
		d, err := cluster.FitDiscretizer(vals, eps[f], minPts)
		if err != nil {
			return nil, fmt.Errorf("core: fit %s: %w", f, err)
		}
		if d.Bins() < 2 {
			d = fallback.disc[f]
		}
		s.disc[f] = d
	}
	return s, nil
}

// Disable removes a feature from the state key (ablation). It returns the
// receiver for chaining.
func (s *StateSpace) Disable(f Feature) *StateSpace {
	if f >= 0 && f < numFeatures {
		s.enabled[f] = false
		s.cache.Store(nil)
	}
	return s
}

// Enabled reports whether feature f contributes to the state key.
func (s *StateSpace) Enabled(f Feature) bool { return f >= 0 && f < numFeatures && s.enabled[f] }

// Bins returns the number of bins for feature f.
func (s *StateSpace) Bins(f Feature) int {
	if f < 0 || f >= numFeatures {
		return 0
	}
	return s.disc[f].Bins()
}

// Size returns the total number of distinct states (product of enabled
// feature bins). The paper's space has 3,072 states.
func (s *StateSpace) Size() int {
	n := 1
	for f := Feature(0); f < numFeatures; f++ {
		if s.enabled[f] {
			n *= s.disc[f].Bins()
		}
	}
	return n
}

// cacheLoad returns the derived indexing tables, building them on first use
// (or after Disable). Concurrent rebuilds produce identical caches, so the
// last Store winning is harmless.
func (s *StateSpace) cacheLoad() *internCache {
	if c := s.cache.Load(); c != nil {
		return c
	}
	c := s.buildCache()
	s.cache.Store(c)
	return c
}

func (s *StateSpace) buildCache() *internCache {
	c := &internCache{size: 1}
	for f := Feature(0); f < numFeatures; f++ {
		r := 1
		if s.enabled[f] {
			r = s.disc[f].Bins()
		}
		c.radix[f] = int32(r)
		c.size *= r
	}
	if c.size <= maxPrecomputedKeys {
		c.keys = make([]rl.State, c.size)
		var bins [NumFeatures]int
		for i := range c.keys {
			decodeBins(c, int32(i), &bins)
			c.keys[i] = s.renderEnabled(c, &bins)
		}
	}
	return c
}

// decodeBins splits a dense index into per-feature bins (0 for radix-1
// features, including disabled ones). The caller guarantees i is in
// [0, c.size).
func decodeBins(c *internCache, i int32, bins *[NumFeatures]int) {
	for f := int(numFeatures) - 1; f >= 0; f-- {
		r := c.radix[f]
		bins[f] = int(i % r)
		i /= r
	}
}

// Index discretizes an observation straight to its dense state index —
// the allocation-free hot-path replacement for Key.
func (s *StateSpace) Index(o Observation) int32 {
	c := s.cacheLoad()
	idx := int32(0)
	for f := Feature(0); f < numFeatures; f++ {
		if !s.enabled[f] {
			continue
		}
		idx = idx*c.radix[f] + int32(s.disc[f].Bin(o.value(f)))
	}
	return idx
}

// KeyOf renders the canonical string key of a dense index (rl.Interner).
// For realistic spaces the key comes from a pre-rendered table, so repeated
// calls return the same interned string without allocating.
func (s *StateSpace) KeyOf(i int32) rl.State {
	c := s.cacheLoad()
	if i < 0 || int(i) >= c.size {
		return ""
	}
	if c.keys != nil {
		return c.keys[i]
	}
	var bins [NumFeatures]int
	decodeBins(c, i, &bins)
	return s.renderEnabled(c, &bins)
}

// BinsOf decodes a dense index into per-feature bins; disabled features
// decode as -1. It reports false for out-of-range indices.
func (s *StateSpace) BinsOf(i int32, bins *[NumFeatures]int) bool {
	c := s.cacheLoad()
	if i < 0 || int(i) >= c.size {
		return false
	}
	decodeBins(c, i, bins)
	for f := Feature(0); f < numFeatures; f++ {
		if !s.enabled[f] {
			bins[f] = -1
		}
	}
	return true
}

// Lookup parses a canonical state key back to its dense index
// (rl.Interner). ok is false for keys this space cannot have rendered:
// wrong feature count, '*' mismatches against the ablation set, bins out of
// range, or non-canonical digit strings.
func (s *StateSpace) Lookup(key rl.State) (int32, bool) {
	c := s.cacheLoad()
	if len(key) == 2*NumFeatures-1 {
		if i, ok := s.lookupFast(c, key); ok {
			return i, true
		}
	}
	return s.lookupSlow(c, key)
}

// lookupFast parses the single-digit-per-feature rendering.
func (s *StateSpace) lookupFast(c *internCache, key rl.State) (int32, bool) {
	idx := int32(0)
	for f := Feature(0); f < numFeatures; f++ {
		if f > 0 && key[2*f-1] != '|' {
			return 0, false
		}
		ch := key[2*f]
		if !s.enabled[f] {
			if ch != '*' {
				return 0, false
			}
			continue
		}
		if ch < '0' || ch > '9' {
			return 0, false
		}
		bin := int32(ch - '0')
		if bin >= c.radix[f] {
			return 0, false
		}
		idx = idx*c.radix[f] + bin
	}
	return idx, true
}

func (s *StateSpace) lookupSlow(c *internCache, key rl.State) (int32, bool) {
	parts := strings.Split(string(key), "|")
	if len(parts) != NumFeatures {
		return 0, false
	}
	idx := int32(0)
	for f := Feature(0); f < numFeatures; f++ {
		p := parts[f]
		if !s.enabled[f] {
			if p != "*" {
				return 0, false
			}
			continue
		}
		// Canonical decimal only: digits, no leading zeros/signs.
		if p == "" || (len(p) > 1 && p[0] == '0') {
			return 0, false
		}
		bin := 0
		for k := 0; k < len(p); k++ {
			if p[k] < '0' || p[k] > '9' {
				return 0, false
			}
			bin = bin*10 + int(p[k]-'0')
			if bin >= int(c.radix[f]) {
				return 0, false
			}
		}
		idx = idx*c.radix[f] + int32(bin)
	}
	return idx, true
}

// Key discretizes an observation into the Q-table state key. Disabled
// features render as "*" so ablated tables collapse their dimension. With
// the pre-rendered key table this is a table lookup; oversized fitted
// spaces render on demand.
func (s *StateSpace) Key(o Observation) rl.State {
	c := s.cacheLoad()
	if c.keys != nil {
		return c.keys[s.Index(o)]
	}
	var bins [NumFeatures]int
	for f := Feature(0); f < numFeatures; f++ {
		if s.enabled[f] {
			bins[f] = s.disc[f].Bin(o.value(f))
		}
	}
	return s.renderEnabled(c, &bins)
}

// renderEnabled renders bins as a key, writing '*' for disabled features.
func (s *StateSpace) renderEnabled(c *internCache, bins *[NumFeatures]int) rl.State {
	var b [NumFeatures]int
	for f := Feature(0); f < numFeatures; f++ {
		if s.enabled[f] {
			b[f] = bins[f]
		} else {
			b[f] = -1
		}
	}
	return renderBins(&b)
}

// renderBins renders per-feature bins into the canonical key string; -1
// renders as '*'. Bin indices are single digits for every realistic
// discretization; larger indices fall back to full formatting.
func renderBins(bins *[NumFeatures]int) rl.State {
	var buf [2*NumFeatures - 1]byte
	for f := 0; f < NumFeatures; f++ {
		if f > 0 {
			buf[2*f-1] = '|'
		}
		switch {
		case bins[f] < 0:
			buf[2*f] = '*'
		case bins[f] > 9:
			return slowRenderBins(bins)
		default:
			buf[2*f] = byte('0' + bins[f])
		}
	}
	return rl.State(buf[:])
}

func slowRenderBins(bins *[NumFeatures]int) rl.State {
	parts := make([]string, NumFeatures)
	for f := 0; f < NumFeatures; f++ {
		if bins[f] < 0 {
			parts[f] = "*"
			continue
		}
		parts[f] = fmt.Sprintf("%d", bins[f])
	}
	return rl.State(strings.Join(parts, "|"))
}
