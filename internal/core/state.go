// Package core implements AutoScale itself (Section IV of the paper): the
// Table I state space with its discretization, the augmented action space of
// Section V-C, the reward of equation (5) with the Renergy estimator of
// equations (1)-(4), and the engine loop of Fig 8 — observe, select,
// execute, reward, update — on top of the Q-learning agent in internal/rl.
package core

import (
	"fmt"
	"strings"

	"autoscale/internal/cluster"
	"autoscale/internal/dnn"
	"autoscale/internal/rl"
	"autoscale/internal/sim"
)

// Feature identifies one of the eight Table I state features.
type Feature int

// The Table I features, in table order.
const (
	FeatConv  Feature = iota // SCONV: number of CONV layers
	FeatFC                   // SFC: number of FC layers
	FeatRC                   // SRC: number of RC layers
	FeatMAC                  // SMAC: number of MAC operations
	FeatCoCPU                // SCo_CPU: CPU utilization of co-running apps
	FeatCoMem                // SCo_MEM: memory usage of co-running apps
	FeatRSSIW                // SRSSI_W: RSSI of the wireless LAN
	FeatRSSIP                // SRSSI_P: RSSI of the peer-to-peer network
	numFeatures
)

var featureNames = [...]string{
	"SCONV", "SFC", "SRC", "SMAC", "SCo_CPU", "SCo_MEM", "SRSSI_W", "SRSSI_P",
}

// String returns the Table I feature name.
func (f Feature) String() string {
	if int(f) < len(featureNames) {
		return featureNames[f]
	}
	return fmt.Sprintf("Feature(%d)", int(f))
}

// NumFeatures is the number of Table I features.
const NumFeatures = int(numFeatures)

// Observation is one raw (pre-discretization) state sample.
type Observation struct {
	NumConv int
	NumFC   int
	NumRC   int
	MACs    float64
	// CoCPU and CoMem are co-runner utilizations in percent (0..100).
	CoCPU float64
	CoMem float64
	// RSSIW and RSSIP are signal strengths in dBm.
	RSSIW float64
	RSSIP float64
}

// ObservationOf assembles the observation for a model under conditions c —
// what AutoScale's monitor reads from the runtime libraries and kernel APIs.
func ObservationOf(m *dnn.Model, c sim.Conditions) Observation {
	return Observation{
		NumConv: m.NumConv(),
		NumFC:   m.NumFC(),
		NumRC:   m.NumRC(),
		MACs:    m.MACs(),
		CoCPU:   c.Load.CPUUtil * 100,
		CoMem:   c.Load.MemUtil * 100,
		RSSIW:   c.RSSIWLAN,
		RSSIP:   c.RSSIP2P,
	}
}

// value extracts the raw scalar for a feature.
func (o Observation) value(f Feature) float64 {
	switch f {
	case FeatConv:
		return float64(o.NumConv)
	case FeatFC:
		return float64(o.NumFC)
	case FeatRC:
		return float64(o.NumRC)
	case FeatMAC:
		return o.MACs
	case FeatCoCPU:
		return o.CoCPU
	case FeatCoMem:
		return o.CoMem
	case FeatRSSIW:
		return o.RSSIW
	case FeatRSSIP:
		return o.RSSIP
	}
	return 0
}

// StateSpace discretizes observations into rl.State keys. Each feature has a
// Discretizer and may be disabled (for the paper's state-ablation study).
type StateSpace struct {
	disc    [NumFeatures]*cluster.Discretizer
	enabled [NumFeatures]bool
}

// NewStateSpace returns the paper's Table I discretization, which its
// authors obtained by running DBSCAN over observed feature samples:
//
//	SCONV: small(<30) medium(<50) large(<90) larger(>=90)
//	SFC:   small(<10) large(>=10)
//	SRC:   small(<10) large(>=10)
//	SMAC:  small(<1000M) medium(<2000M) large(>=2000M)
//	SCo_CPU / SCo_MEM: none(0) small(<25) medium(<75) large(<=100)
//	SRSSI_W / SRSSI_P: regular(>-80dBm) weak(<=-80dBm)
func NewStateSpace() *StateSpace {
	s := &StateSpace{}
	s.disc[FeatConv] = cluster.NewDiscretizer([]float64{30, 50, 90})
	s.disc[FeatFC] = cluster.NewDiscretizer([]float64{10})
	s.disc[FeatRC] = cluster.NewDiscretizer([]float64{10})
	s.disc[FeatMAC] = cluster.NewDiscretizer([]float64{1000e6, 2000e6})
	s.disc[FeatCoCPU] = cluster.NewDiscretizer([]float64{0.5, 25, 75})
	s.disc[FeatCoMem] = cluster.NewDiscretizer([]float64{0.5, 25, 75})
	// Table I counts exactly -80 dBm as weak ("<= -80"), so the cut sits
	// just above the boundary.
	s.disc[FeatRSSIW] = cluster.NewDiscretizer([]float64{-79.999})
	s.disc[FeatRSSIP] = cluster.NewDiscretizer([]float64{-79.999})
	for i := range s.enabled {
		s.enabled[i] = true
	}
	return s
}

// FitStateSpace rebuilds the discretization by clustering the given
// observation samples with DBSCAN, exactly as the paper derives Table I.
// Features whose samples do not split into at least two clusters fall back
// to the Table I cuts.
func FitStateSpace(samples []Observation) (*StateSpace, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("core: no samples to fit")
	}
	fallback := NewStateSpace()
	s := &StateSpace{}
	for i := range s.enabled {
		s.enabled[i] = true
	}
	// Per-feature DBSCAN radii scaled to the feature's natural units.
	eps := [NumFeatures]float64{
		FeatConv: 8, FeatFC: 4, FeatRC: 4, FeatMAC: 400e6,
		FeatCoCPU: 10, FeatCoMem: 10, FeatRSSIW: 5, FeatRSSIP: 5,
	}
	minPts := 2
	for f := Feature(0); f < numFeatures; f++ {
		vals := make([]float64, len(samples))
		for i, o := range samples {
			vals[i] = o.value(f)
		}
		d, err := cluster.FitDiscretizer(vals, eps[f], minPts)
		if err != nil {
			return nil, fmt.Errorf("core: fit %s: %w", f, err)
		}
		if d.Bins() < 2 {
			d = fallback.disc[f]
		}
		s.disc[f] = d
	}
	return s, nil
}

// Disable removes a feature from the state key (ablation). It returns the
// receiver for chaining.
func (s *StateSpace) Disable(f Feature) *StateSpace {
	if f >= 0 && f < numFeatures {
		s.enabled[f] = false
	}
	return s
}

// Enabled reports whether feature f contributes to the state key.
func (s *StateSpace) Enabled(f Feature) bool { return f >= 0 && f < numFeatures && s.enabled[f] }

// Bins returns the number of bins for feature f.
func (s *StateSpace) Bins(f Feature) int {
	if f < 0 || f >= numFeatures {
		return 0
	}
	return s.disc[f].Bins()
}

// Size returns the total number of distinct states (product of enabled
// feature bins). The paper's space has 3,072 states.
func (s *StateSpace) Size() int {
	n := 1
	for f := Feature(0); f < numFeatures; f++ {
		if s.enabled[f] {
			n *= s.disc[f].Bins()
		}
	}
	return n
}

// Key discretizes an observation into the Q-table state key. Disabled
// features render as "*" so ablated tables collapse their dimension. Bin
// indices are single digits for every realistic discretization; larger
// indices fall back to full formatting.
func (s *StateSpace) Key(o Observation) rl.State {
	var buf [2*NumFeatures - 1]byte
	for f := Feature(0); f < numFeatures; f++ {
		if f > 0 {
			buf[2*f-1] = '|'
		}
		if !s.enabled[f] {
			buf[2*f] = '*'
			continue
		}
		bin := s.disc[f].Bin(o.value(f))
		if bin > 9 {
			return s.slowKey(o)
		}
		buf[2*f] = byte('0' + bin)
	}
	return rl.State(buf[:])
}

func (s *StateSpace) slowKey(o Observation) rl.State {
	parts := make([]string, NumFeatures)
	for f := Feature(0); f < numFeatures; f++ {
		if !s.enabled[f] {
			parts[f] = "*"
			continue
		}
		parts[f] = fmt.Sprintf("%d", s.disc[f].Bin(o.value(f)))
	}
	return rl.State(strings.Join(parts, "|"))
}
