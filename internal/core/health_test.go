package core

import (
	"math"
	"testing"

	"autoscale/internal/dnn"
	"autoscale/internal/sim"
	"autoscale/internal/soc"
)

func TestHealthFreshEngine(t *testing.T) {
	e := newTestEngine(t)
	h := e.Health()
	if h.Algorithm != "Q-learning" || h.Frozen {
		t.Fatalf("fresh health = %+v", h)
	}
	if h.States != 0 || h.Coverage != 0 || h.TotalVisits != 0 || h.Selections != 0 {
		t.Fatalf("fresh engine claims experience: %+v", h)
	}
	if h.StateSpaceSize != NewStateSpace().Size() {
		t.Fatalf("state space size = %d", h.StateSpaceSize)
	}
	if h.RewardSamples != 0 || h.MeanReward != 0 || h.TDSamples != 0 || h.VirtualS != 0 {
		t.Fatalf("fresh engine claims history: %+v", h)
	}
	if h.Epsilon != DefaultConfig().RL.Epsilon {
		t.Fatalf("epsilon = %v", h.Epsilon)
	}
}

func TestHealthTracksLearning(t *testing.T) {
	e := newTestEngine(t)
	m := dnn.MustByName("MobileNet v1")
	const steps = 50
	var rewardSum float64
	for i := 0; i < steps; i++ {
		d, err := e.RunInference(m, strongCond())
		if err != nil {
			t.Fatal(err)
		}
		rewardSum += d.Reward
	}
	h := e.Health()
	if h.States < 1 || h.States > h.StateSpaceSize {
		t.Fatalf("states = %d of %d", h.States, h.StateSpaceSize)
	}
	wantCov := float64(h.States) / float64(h.StateSpaceSize)
	if math.Abs(h.Coverage-wantCov) > 1e-12 {
		t.Fatalf("coverage = %v, want %v", h.Coverage, wantCov)
	}
	if h.TotalVisits != steps || h.Selections != steps {
		t.Fatalf("visits/selections = %d/%d, want %d", h.TotalVisits, h.Selections, steps)
	}
	if h.MaxVisits < 1 || h.MaxVisits > steps {
		t.Fatalf("max visits = %d", h.MaxVisits)
	}
	if h.VisitEntropy < 0 || h.VisitEntropy > 1 {
		t.Fatalf("entropy = %v", h.VisitEntropy)
	}
	// steps-1 deferred updates have completed (the last is still staged).
	if h.TDSamples != steps-1 {
		t.Fatalf("TD samples = %d, want %d", h.TDSamples, steps-1)
	}
	if h.TDErrorEMA <= 0 {
		t.Fatalf("TD EMA = %v", h.TDErrorEMA)
	}
	if h.RewardSamples != steps {
		t.Fatalf("reward samples = %d", h.RewardSamples)
	}
	if math.Abs(h.MeanReward-rewardSum/steps) > 1e-9 {
		t.Fatalf("mean reward = %v, want %v", h.MeanReward, rewardSum/steps)
	}
	if h.VirtualS <= 0 {
		t.Fatalf("virtual clock did not advance: %v", h.VirtualS)
	}
	if h.ExplorationRatio < 0 || h.ExplorationRatio > 1 {
		t.Fatalf("exploration ratio = %v", h.ExplorationRatio)
	}
}

func TestHealthRewardWindowCapsAndResetClears(t *testing.T) {
	e := newTestEngine(t)
	m := dnn.MustByName("MobileNet v1")
	for i := 0; i < rewardWindow+20; i++ {
		if _, err := e.RunInference(m, strongCond()); err != nil {
			t.Fatal(err)
		}
	}
	h := e.Health()
	if h.RewardSamples != rewardWindow {
		t.Fatalf("reward window = %d, want %d", h.RewardSamples, rewardWindow)
	}
	if err := e.Reset(); err != nil {
		t.Fatal(err)
	}
	h = e.Health()
	if h.RewardSamples != 0 || h.States != 0 || h.TDSamples != 0 {
		t.Fatalf("Reset left health state: %+v", h)
	}
	if h.VirtualS <= 0 {
		t.Fatal("Reset must keep the virtual clock")
	}
}

// TestHealthIsPureObservation pins the determinism contract: interleaving
// Health() calls into a run must not change its decisions or its clock.
func TestHealthIsPureObservation(t *testing.T) {
	run := func(sample bool) []Decision {
		w := sim.NewWorld(soc.Mi8Pro(), 1)
		e, err := NewEngine(w, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		m := dnn.MustByName("MobileNet v1")
		out := make([]Decision, 0, 30)
		for i := 0; i < 30; i++ {
			if sample {
				e.Health()
			}
			d, err := e.RunInference(m, strongCond())
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, d)
		}
		return out
	}
	plain, sampled := run(false), run(true)
	for i := range plain {
		if plain[i] != sampled[i] {
			t.Fatalf("step %d diverged under observation:\n %+v\nvs %+v", i, plain[i], sampled[i])
		}
	}
}

func TestHealthSarsaAlgorithmName(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Algorithm = AlgorithmSARSA
	e, err := NewEngine(sim.NewWorld(soc.Mi8Pro(), 1), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if h := e.Health(); h.Algorithm != "SARSA" {
		t.Fatalf("algorithm = %q", h.Algorithm)
	}
}
