package core

import (
	"sync"
	"testing"

	"autoscale/internal/dnn"
	"autoscale/internal/sim"
	"autoscale/internal/soc"
)

func TestPartitionActionSpace(t *testing.T) {
	w := sim.NewWorld(soc.Mi8Pro(), 1)
	plain := NewActionSpace(w)
	part := NewActionSpaceWithPartitions(w)
	// 3 cut fractions x 2 remote locations = 6 extra actions.
	if part.Len() != plain.Len()+6 {
		t.Fatalf("partition space = %d, want %d", part.Len(), plain.Len()+6)
	}
	for i := 0; i < plain.Len(); i++ {
		if part.IsPartition(i) {
			t.Fatalf("standard action %d flagged as partition", i)
		}
	}
	for i := plain.Len(); i < part.Len(); i++ {
		if !part.IsPartition(i) {
			t.Fatalf("action %d should be a partition", i)
		}
		d := part.Describe(i)
		if len(d) == 0 || d[:9] != "partition" {
			t.Errorf("Describe(%d) = %q", i, d)
		}
	}
	// Standard actions describe as their targets.
	if part.Describe(0) != part.Target(0).String() {
		t.Error("standard describe mismatch")
	}
}

func TestPartitionActionExecution(t *testing.T) {
	w := sim.NewWorld(soc.Mi8Pro(), 1)
	as := NewActionSpaceWithPartitions(w)
	m := dnn.MustByName("ResNet 50")
	c := strongCond()
	for i := as.Len() - 6; i < as.Len(); i++ {
		meas, err := as.Execute(m, i, c)
		if err != nil {
			t.Fatalf("%s: %v", as.Describe(i), err)
		}
		if meas.LatencyS <= 0 || meas.EnergyJ <= 0 {
			t.Fatalf("%s produced a bad measurement", as.Describe(i))
		}
		// A genuine split spends both local compute and radio energy.
		if meas.Breakdown.Compute <= 0 {
			t.Errorf("%s: no local compute", as.Describe(i))
		}
		if meas.Breakdown.Radio <= 0 {
			t.Errorf("%s: no radio energy", as.Describe(i))
		}
	}
	if _, err := as.Execute(m, -1, c); err == nil {
		t.Error("out-of-range action should fail")
	}
	if _, err := as.Execute(m, as.Len(), c); err == nil {
		t.Error("out-of-range action should fail")
	}
}

func TestPartitionMaskForRCModels(t *testing.T) {
	w := sim.NewWorld(soc.Mi8Pro(), 1)
	as := NewActionSpaceWithPartitions(w)
	bert := dnn.MustByName("MobileBERT")
	mask := as.Mask(bert)
	// BERT's prefix runs on the CPU (which supports RC): partitions stay
	// feasible.
	for i := as.Len() - 6; i < as.Len(); i++ {
		if !mask[i] {
			t.Errorf("partition %s should be feasible for MobileBERT", as.Describe(i))
		}
	}
	// And partitioned BERT executes.
	if _, err := as.Execute(bert, as.Len()-1, strongCond()); err != nil {
		t.Fatal(err)
	}
}

func TestEngineWithPartitionActions(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PartitionActions = true
	e, err := NewEngine(sim.NewWorld(soc.Mi8Pro(), 2), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if e.Actions.Len() != 72 {
		t.Fatalf("engine action space = %d, want 72", e.Actions.Len())
	}
	m := dnn.MustByName("Inception v3")
	for i := 0; i < 100; i++ {
		if _, err := e.RunInference(m, strongCond()); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSARSAEngine(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Algorithm = AlgorithmSARSA
	e, err := NewEngine(sim.NewWorld(soc.Mi8Pro(), 3), cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := dnn.MustByName("MobileNet v1")
	c := strongCond()
	for i := 0; i < 200; i++ {
		if _, err := e.RunInference(m, c); err != nil {
			t.Fatal(err)
		}
	}
	// The on-policy learner still converges to a sane choice: a feasible
	// target that does not grossly violate QoS.
	tgt, err := e.Predict(m, c)
	if err != nil {
		t.Fatal(err)
	}
	meas, err := e.World.Expected(m, tgt, c)
	if err != nil {
		t.Fatal(err)
	}
	if meas.LatencyS > 3*sim.QoSNonStreamingS {
		t.Errorf("SARSA converged to a terrible target %v (%.1f ms)", tgt, meas.LatencyS*1e3)
	}
}

func TestAlgorithmString(t *testing.T) {
	if AlgorithmQLearning.String() != "Q-learning" || AlgorithmSARSA.String() != "SARSA" {
		t.Error("algorithm names wrong")
	}
}

func TestEngineConcurrentServices(t *testing.T) {
	// Multiple services (goroutines) share one engine, as on a real phone.
	e := newTestEngine(t)
	models := []*dnn.Model{
		dnn.MustByName("MobileNet v1"),
		dnn.MustByName("Inception v1"),
		dnn.MustByName("MobileBERT"),
	}
	var wg sync.WaitGroup
	errs := make(chan error, len(models))
	for _, m := range models {
		wg.Add(1)
		go func(m *dnn.Model) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if _, err := e.RunInference(m, strongCond()); err != nil {
					errs <- err
					return
				}
			}
		}(m)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if len(e.Agent().States()) == 0 {
		t.Error("no states learned")
	}
}
