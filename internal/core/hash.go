package core

import (
	"crypto/sha256"
	"fmt"
)

// ConfigHash fingerprints everything that must agree for two engines'
// Q-tables to be row-compatible: the action space (every target, in index
// order — location, engine kind, DVFS step, precision), the state
// discretization (enabled Table I features and their bin counts), the update
// algorithm, and the reward parameterization (tables trained against
// different rewards encode different value scales and must not be averaged
// together). Exploration knobs and seeds are deliberately excluded: they
// shape how a table was filled, not what its rows mean.
//
// The policy plane stamps this hash into every checkpoint envelope and the
// federation layer only merges (and only warm-starts from) checkpoints whose
// hash matches the receiving engine.
func (e *Engine) ConfigHash() string {
	h := sha256.New()
	fmt.Fprintf(h, "algo=%d\n", int(e.cfg.Algorithm))
	fmt.Fprintf(h, "reward=%g,%g,%g,%g\n",
		e.cfg.Reward.QoSTargetS, e.cfg.Reward.AccuracyTarget, e.cfg.Reward.Alpha, e.cfg.Reward.Beta)
	fmt.Fprintf(h, "intensity=%d\n", int(e.cfg.Intensity))
	fmt.Fprintf(h, "partitions=%t\n", e.cfg.PartitionActions)
	for i, t := range e.Actions.Targets() {
		fmt.Fprintf(h, "a%d=%d,%d,%d,%d\n", i, int(t.Location), int(t.Kind), t.Step, int(t.Prec))
	}
	for f := Feature(0); f < Feature(NumFeatures); f++ {
		bins := 0
		if e.States.Enabled(f) {
			bins = e.States.Bins(f)
		}
		fmt.Fprintf(h, "s%d=%d\n", int(f), bins)
	}
	return fmt.Sprintf("%x", h.Sum(nil))[:16]
}
