package core

import (
	"math"

	"autoscale/internal/exec"
	"autoscale/internal/sim"
)

// RewardConfig parameterizes equation (5) of the paper.
type RewardConfig struct {
	// QoSTargetS is the latency constraint in seconds.
	QoSTargetS float64
	// AccuracyTarget is the inference quality requirement in percent;
	// zero disables the accuracy constraint.
	AccuracyTarget float64
	// Alpha is the latency weight (paper: 0.1).
	Alpha float64
	// Beta is the accuracy weight (paper: 0.1).
	Beta float64
}

// Reward units: the paper mixes raw measurements. To make energy the
// dominant discriminating term (as the paper's converged behaviour implies),
// Renergy enters in millijoules and Raccuracy in percent, so the
// accuracy-miss penalty Raccuracy - 100 stays on the paper's percent scale.
//
// Deviation, documented in DESIGN.md: equation (5) as printed adds
// +alpha*Rlatency (the raw measured latency) when QoS is met. Taken
// literally with raw magnitudes, that term *rewards slower* satisfying
// targets and prices the QoS constraint itself at only a few millijoules, so
// the converged policy would prefer a cheaper QoS-violating target — the
// opposite of the paper's measured behaviour (AutoScale within 1.9% of Opt's
// violation ratio). We therefore award the latency term at the constraint
// boundary — alpha * QoS(in ms) when the constraint is met, zero otherwise —
// which is identical to the paper's term for a target sitting exactly at the
// QoS limit and constant (hence distortion-free) across satisfying targets.
// The paper itself notes "we can use higher weights if the inference
// workload requires higher performance"; the default Alpha is 1.0.

// accuracyMissScale multiplies the paper's accuracy-miss penalty
// (Raccuracy - 100). At the millijoule energy scale of this simulator the
// raw penalty (at most -100) can be *larger* than the reward of a heavy but
// valid target, which would teach the engine to violate the accuracy
// constraint; the scale keeps the paper's ordering among missing targets
// while making every miss strictly worse than any valid execution.
const accuracyMissScale = 100

// Reward computes equation (5) for a measured outcome:
//
//	if Raccuracy < quality requirement:  R = (Raccuracy - 100) * scale
//	else if Rlatency < QoS constraint:   R = -Renergy + alpha*QoS + beta*Raccuracy
//	else:                                R = -Renergy + beta*Raccuracy
//
// energyJ is the *estimated* energy (eqs (1)-(4) applied to the measured
// latency), latencyS the measured latency, accuracy the stored accuracy of
// the chosen target.
func (c RewardConfig) Reward(energyJ, latencyS, accuracy float64) float64 {
	if c.AccuracyTarget > 0 && accuracy < c.AccuracyTarget {
		return (accuracy - 100) * accuracyMissScale
	}
	energyMJ := energyJ * 1e3
	if latencyS < c.QoSTargetS {
		return -energyMJ + c.Alpha*c.QoSTargetS*1e3 + c.Beta*accuracy
	}
	return -energyMJ + c.Beta*accuracy
}

// EnergyEstimator produces AutoScale's Renergy: the power models of
// equations (1)-(4) applied to the measured latency. The simulator computes
// those same equations as ground truth, so the estimator is the truth plus a
// zero-mean relative error calibrated to the paper's reported 7.3% MAPE.
type EnergyEstimator struct {
	// sigma of the multiplicative Gaussian error. For a zero-mean
	// Gaussian, MAPE = sigma * sqrt(2/pi), so sigma = MAPE/sqrt(2/pi).
	sigma float64
	// fallback serves Estimate calls made without a request context.
	fallback *exec.Rand
}

// PaperEnergyMAPE is the estimation error the paper reports for Renergy.
const PaperEnergyMAPE = 0.073

// NewEnergyEstimator creates an estimator with the given MAPE (fraction,
// e.g. 0.073) and seed. A non-positive MAPE yields a perfect estimator.
func NewEnergyEstimator(mape float64, seed int64) *EnergyEstimator {
	sigma := 0.0
	if mape > 0 {
		sigma = mape / math.Sqrt(2/math.Pi)
	}
	return &EnergyEstimator{
		sigma:    sigma,
		fallback: exec.NewRoot(seed).Stream("core.energy-est"),
	}
}

// Estimate returns Renergy for a measured outcome, drawing the estimation
// error from the estimator's internal stream. Not safe for concurrent use;
// prefer EstimateCtx on concurrent paths.
func (e *EnergyEstimator) Estimate(meas sim.Measurement) float64 {
	return e.estimate(e.fallback, meas)
}

// EstimateCtx returns Renergy with the estimation error drawn from the
// request context's "core.energy-est" stream, making the estimate a pure
// function of (context identity, measurement). A nil ctx falls back to the
// internal stream.
func (e *EnergyEstimator) EstimateCtx(ctx *exec.Context, meas sim.Measurement) float64 {
	if ctx == nil {
		return e.Estimate(meas)
	}
	if e.sigma == 0 {
		return e.estimate(nil, meas) // no draw needed; skip the stream
	}
	rng := ctx.GetStream("core.energy-est")
	est := e.estimate(rng, meas)
	exec.PutStream(rng)
	return est
}

func (e *EnergyEstimator) estimate(rng *exec.Rand, meas sim.Measurement) float64 {
	est := meas.EnergyJ
	if e.sigma > 0 {
		est *= 1 + e.sigma*rng.NormFloat64()
		if est < 0 {
			est = 0
		}
	}
	return est
}
