package core

import (
	"sort"
	"testing"

	"autoscale/internal/rl"
)

// The dense index <-> string key conversion must be a bijection over the
// full state space: every index renders to a unique canonical key, and every
// key parses back to its index.
func TestStateIndexKeyBijection(t *testing.T) {
	spaces := map[string]*StateSpace{
		"full":    NewStateSpace(),
		"ablated": NewStateSpace().Disable(FeatMAC).Disable(FeatRSSIP),
		"single":  NewStateSpace().Disable(FeatConv).Disable(FeatFC).Disable(FeatRC).Disable(FeatMAC).Disable(FeatCoCPU).Disable(FeatCoMem).Disable(FeatRSSIP),
	}
	for name, ss := range spaces {
		t.Run(name, func(t *testing.T) {
			n := ss.Size()
			seen := make(map[string]int32, n)
			for i := int32(0); int(i) < n; i++ {
				key := ss.KeyOf(i)
				if key == "" {
					t.Fatalf("KeyOf(%d) rendered empty", i)
				}
				if prev, dup := seen[string(key)]; dup {
					t.Fatalf("KeyOf(%d) == KeyOf(%d) == %q", i, prev, key)
				}
				seen[string(key)] = i
				j, ok := ss.Lookup(key)
				if !ok || j != i {
					t.Fatalf("Lookup(KeyOf(%d)) = (%d, %v), want (%d, true)", i, j, ok, i)
				}
			}
			if len(seen) != n {
				t.Fatalf("rendered %d unique keys, want %d", len(seen), n)
			}
		})
	}
}

// Ascending index order must equal ascending lexicographic key order — the
// nearest-neighbour seeder relies on scanning materialized indices in the
// same order the map-backed table scanned sorted string keys.
func TestStateIndexOrderMatchesKeyOrder(t *testing.T) {
	ss := NewStateSpace()
	n := ss.Size()
	keys := make([]string, n)
	for i := 0; i < n; i++ {
		keys[i] = string(ss.KeyOf(int32(i)))
	}
	if !sort.StringsAreSorted(keys) {
		t.Fatal("index order does not match lexicographic key order")
	}
}

// Key and Index must agree: the string key of an observation is the rendering
// of its dense index.
func TestKeyMatchesIndex(t *testing.T) {
	ss := NewStateSpace()
	obs := []Observation{
		{},
		{NumConv: 100, NumFC: 20, NumRC: 20, MACs: 3000e6, CoCPU: 90, CoMem: 90, RSSIW: -85, RSSIP: -85},
		{NumConv: 35, NumFC: 5, NumRC: 12, MACs: 1500e6, CoCPU: 10, CoMem: 50, RSSIW: -60, RSSIP: -90},
		{NumConv: 60, MACs: 500e6, CoCPU: 0.4, CoMem: 30, RSSIW: -80, RSSIP: -70},
	}
	for _, o := range obs {
		if got, want := ss.Key(o), ss.KeyOf(ss.Index(o)); got != want {
			t.Fatalf("Key(%+v) = %q, KeyOf(Index) = %q", o, got, want)
		}
	}
}

// Lookup must reject keys this space could not have rendered.
func TestLookupRejectsAlienKeys(t *testing.T) {
	ss := NewStateSpace()
	ablated := NewStateSpace().Disable(FeatMAC)
	cases := []struct {
		ss  *StateSpace
		key string
	}{
		{ss, ""},
		{ss, "0|1|0|1|0|0|1"},        // seven features
		{ss, "0|1|0|1|0|0|1|1|0"},    // nine features
		{ss, "*|1|0|1|0|0|1|1"},      // '*' on an enabled feature
		{ss, "9|1|0|1|0|0|1|1"},      // bin out of range (SCONV has 4 bins)
		{ss, "0|1|0|1|0|0|1|2"},      // bin out of range (SRSSI_P has 2 bins)
		{ss, "00|1|0|1|0|0|1|1"},     // non-canonical digits
		{ss, "0|1|0|1|0|0|1|x"},      // non-digit
		{ablated, "0|1|0|1|0|0|1|1"}, // digit where the ablation renders '*'
	}
	for _, c := range cases {
		if i, ok := c.ss.Lookup(rl.State(c.key)); ok {
			t.Fatalf("Lookup(%q) accepted as %d", c.key, i)
		}
	}
}

// BinsOf must decode indices consistently with KeyOf.
func TestBinsOfDecodes(t *testing.T) {
	ss := NewStateSpace().Disable(FeatRC)
	var bins [NumFeatures]int
	if ss.BinsOf(int32(ss.Size()), &bins) {
		t.Fatal("BinsOf accepted out-of-range index")
	}
	for i := int32(0); int(i) < ss.Size(); i += 7 {
		if !ss.BinsOf(i, &bins) {
			t.Fatalf("BinsOf(%d) failed", i)
		}
		if bins[FeatRC] != -1 {
			t.Fatalf("BinsOf(%d): disabled feature decoded %d, want -1", i, bins[FeatRC])
		}
		if got := renderBins(&bins); got != ss.KeyOf(i) {
			t.Fatalf("BinsOf(%d) renders %q, KeyOf %q", i, got, ss.KeyOf(i))
		}
	}
}
