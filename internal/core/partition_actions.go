package core

import (
	"fmt"

	"autoscale/internal/dnn"
	"autoscale/internal/exec"
	"autoscale/internal/sim"
	"autoscale/internal/soc"
)

// Layer-granularity partition actions — the paper's footnote 4 extension:
// "model partitioning at layer granularity is complementary to and can be
// applied on top of AutoScale". When enabled, the action space grows by a
// small set of partition-point actions (run a prefix of the model locally,
// ship the boundary activation, finish remotely); the Q-table learns when a
// split beats both pure-local and pure-offload execution, exactly as it
// learns everything else.

// partitionSpec describes one partition action: the fraction of layers that
// stays local and the remote location that finishes the model.
type partitionSpec struct {
	cutFrac float64
	remote  sim.Location
}

// partitionCutFracs are the candidate split points. Finer grids grow the
// action space (and training time) linearly; quarter points capture the
// useful region (NeuroSurgeon-style sweeps show the optimum is flat).
var partitionCutFracs = []float64{0.25, 0.50, 0.75}

// partitionRemotes are the locations a split can finish on.
var partitionRemotes = []sim.Location{sim.Connected, sim.Cloud}

// appendPartitionActions extends the targets list with placeholders for the
// partition actions and records their specs. The placeholder target names
// the remote location so displays stay meaningful.
func (a *ActionSpace) appendPartitionActions() {
	for _, remote := range partitionRemotes {
		for _, frac := range partitionCutFracs {
			a.partitions = append(a.partitions, partitionSpec{cutFrac: frac, remote: remote})
			a.targets = append(a.targets, sim.Target{Location: remote, Kind: soc.GPU, Prec: dnn.FP32})
		}
	}
}

// IsPartition reports whether action index i is a partition action.
func (a *ActionSpace) IsPartition(i int) bool {
	return i >= a.Len()-len(a.partitions) && i < a.Len()
}

// partitionAt returns the spec of partition action i.
func (a *ActionSpace) partitionAt(i int) partitionSpec {
	return a.partitions[i-(a.Len()-len(a.partitions))]
}

// Describe renders action i, including the partition annotation.
func (a *ActionSpace) Describe(i int) string {
	if a.IsPartition(i) {
		p := a.partitionAt(i)
		return fmt.Sprintf("partition@%.0f%%->%s", p.cutFrac*100, p.remote)
	}
	return a.targets[i].String()
}

// partitionLocal picks the engine the local prefix runs on: the GPU when the
// model has no recurrent layers, else the CPU — both FP32 at top frequency
// (matching the NeuroSurgeon-style comparator so the comparison is fair).
func (a *ActionSpace) partitionLocal(m *dnn.Model) sim.Target {
	if gpu := a.world.Device.Processor(soc.GPU); gpu != nil && !m.HasRC() {
		return sim.Target{Location: sim.Local, Kind: soc.GPU, Step: gpu.Steps - 1, Prec: dnn.FP32}
	}
	cpu := a.world.Device.Processor(soc.CPU)
	return sim.Target{Location: sim.Local, Kind: soc.CPU, Step: cpu.Steps - 1, Prec: dnn.FP32}
}

// Execute runs action i for model m under conditions c — covering both
// whole-model targets and partition actions. The world derives a request
// context from its internal sequence.
func (a *ActionSpace) Execute(m *dnn.Model, i int, c sim.Conditions) (sim.Measurement, error) {
	return a.ExecuteCtx(nil, m, i, c)
}

// ExecuteCtx runs action i under an explicit request context — the single
// entry point the engine uses. A nil ctx falls back to the world's internal
// sequence.
func (a *ActionSpace) ExecuteCtx(ctx *exec.Context, m *dnn.Model, i int, c sim.Conditions) (sim.Measurement, error) {
	if i < 0 || i >= a.Len() {
		return sim.Measurement{}, fmt.Errorf("core: action %d out of range", i)
	}
	if !a.IsPartition(i) {
		return a.world.ExecuteCtx(ctx, m, a.targets[i], c)
	}
	p := a.partitionAt(i)
	cut := int(p.cutFrac * float64(len(m.Layers)))
	if cut < 1 {
		cut = 1
	}
	if cut >= len(m.Layers) {
		cut = len(m.Layers) - 1
	}
	return a.world.Partitioned(m, cut, a.partitionLocal(m), p.remote, c)
}

// partitionFeasible reports whether partition action i can run model m: the
// local prefix engine must be able to execute the prefix layers.
func (a *ActionSpace) partitionFeasible(m *dnn.Model, i int) bool {
	local := a.partitionLocal(m)
	proc := a.world.Device.Processor(local.Kind)
	if proc == nil {
		return false
	}
	if m.HasRC() && !proc.SupportsRC {
		return false
	}
	return len(m.Layers) >= 2
}
