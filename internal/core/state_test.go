package core

import (
	"strings"
	"testing"
	"testing/quick"

	"autoscale/internal/cluster"
	"autoscale/internal/dnn"
	"autoscale/internal/interfere"
	"autoscale/internal/sim"
)

func TestStateSpaceSizeMatchesPaper(t *testing.T) {
	s := NewStateSpace()
	// Table I: 4 x 2 x 2 x 3 x 4 x 4 x 2 x 2 = 3,072 states.
	if got := s.Size(); got != 3072 {
		t.Errorf("state space size = %d, want 3072", got)
	}
}

func TestTableIBins(t *testing.T) {
	s := NewStateSpace()
	want := map[Feature]int{
		FeatConv: 4, FeatFC: 2, FeatRC: 2, FeatMAC: 3,
		FeatCoCPU: 4, FeatCoMem: 4, FeatRSSIW: 2, FeatRSSIP: 2,
	}
	for f, n := range want {
		if got := s.Bins(f); got != n {
			t.Errorf("%s bins = %d, want %d", f, got, n)
		}
	}
	if s.Bins(Feature(-1)) != 0 || s.Bins(Feature(99)) != 0 {
		t.Error("out-of-range bins must be 0")
	}
}

func TestTableIBoundaries(t *testing.T) {
	s := NewStateSpace()
	// SCONV: small(<30) medium(<50) large(<90) larger(>=90).
	conv := func(n int) string {
		return strings.Split(string(s.Key(Observation{NumConv: n})), "|")[0]
	}
	if conv(29) != "0" || conv(30) != "1" || conv(49) != "1" || conv(50) != "2" ||
		conv(89) != "2" || conv(90) != "3" {
		t.Error("SCONV boundaries drifted from Table I")
	}
	// SMAC: small(<1000M) medium(<2000M) large(>=2000M).
	mac := func(m float64) string {
		return strings.Split(string(s.Key(Observation{MACs: m})), "|")[3]
	}
	if mac(999e6) != "0" || mac(1000e6) != "1" || mac(1999e6) != "1" || mac(2000e6) != "2" {
		t.Error("SMAC boundaries drifted from Table I")
	}
	// SCo_CPU: none(0) small(<25) medium(<75) large(<=100).
	cpu := func(u float64) string {
		return strings.Split(string(s.Key(Observation{CoCPU: u})), "|")[4]
	}
	if cpu(0) != "0" || cpu(10) != "1" || cpu(25) != "2" || cpu(74) != "2" || cpu(75) != "3" {
		t.Error("SCo_CPU boundaries drifted from Table I")
	}
	// RSSI: regular(>-80) weak(<=-80).
	rssi := func(v float64) string {
		return strings.Split(string(s.Key(Observation{RSSIW: v})), "|")[6]
	}
	if rssi(-79.9) != "1" || rssi(-80) != "0" || rssi(-90) != "0" {
		t.Error("SRSSI boundaries drifted from Table I")
	}
}

func TestObservationOf(t *testing.T) {
	m := dnn.MustByName("MobileNet v3")
	c := sim.Conditions{
		Load:     interfere.Load{CPUUtil: 0.5, MemUtil: 0.3},
		RSSIWLAN: -60, RSSIP2P: -85,
	}
	o := ObservationOf(m, c)
	if o.NumConv != 23 || o.NumFC != 20 || o.NumRC != 0 {
		t.Errorf("layer counts = %d/%d/%d", o.NumConv, o.NumFC, o.NumRC)
	}
	if o.CoCPU != 50 || o.CoMem != 30 {
		t.Errorf("co-runner percents = %v/%v", o.CoCPU, o.CoMem)
	}
	if o.RSSIW != -60 || o.RSSIP != -85 {
		t.Error("RSSI passthrough broken")
	}
	if o.MACs != m.MACs() {
		t.Error("MACs passthrough broken")
	}
}

func TestKeyDistinguishesModels(t *testing.T) {
	s := NewStateSpace()
	c := sim.Conditions{RSSIWLAN: -55, RSSIP2P: -55}
	keys := map[string]bool{}
	for _, m := range dnn.Zoo() {
		keys[string(s.Key(ObservationOf(m, c)))] = true
	}
	// Models with identical Table I bins may collide, but there must be
	// several distinct NN states.
	if len(keys) < 5 {
		t.Errorf("only %d distinct NN states across the zoo", len(keys))
	}
}

func TestDisable(t *testing.T) {
	s := NewStateSpace().Disable(FeatRSSIP)
	if s.Enabled(FeatRSSIP) {
		t.Error("feature still enabled")
	}
	if got := s.Size(); got != 3072/2 {
		t.Errorf("ablated size = %d, want 1536", got)
	}
	key := string(s.Key(Observation{}))
	parts := strings.Split(key, "|")
	if parts[FeatRSSIP] != "*" {
		t.Errorf("disabled feature renders as %q, want *", parts[FeatRSSIP])
	}
	// Different RSSIP values collapse to the same key.
	a := s.Key(Observation{RSSIP: -55})
	b := s.Key(Observation{RSSIP: -90})
	if a != b {
		t.Error("disabled feature still distinguishes states")
	}
}

func TestFitStateSpace(t *testing.T) {
	var samples []Observation
	// Two clear clusters per feature.
	for i := 0; i < 30; i++ {
		samples = append(samples,
			Observation{NumConv: 10 + i%3, NumFC: 1, NumRC: 0, MACs: 0.3e9 + float64(i%3)*1e7,
				CoCPU: 5, CoMem: 5, RSSIW: -55, RSSIP: -55},
			Observation{NumConv: 90 + i%3, NumFC: 20, NumRC: 24, MACs: 5e9 + float64(i%3)*1e7,
				CoCPU: 80, CoMem: 80, RSSIW: -90, RSSIP: -90})
	}
	s, err := FitStateSpace(samples)
	if err != nil {
		t.Fatal(err)
	}
	for f := Feature(0); int(f) < NumFeatures; f++ {
		if s.Bins(f) < 2 {
			t.Errorf("%s fitted only %d bins", f, s.Bins(f))
		}
	}
	// The fitted cuts must separate the two clusters.
	a := s.Key(samples[0])
	b := s.Key(samples[1])
	if a == b {
		t.Error("fitted space does not separate the clusters")
	}
	if _, err := FitStateSpace(nil); err == nil {
		t.Error("empty fit should fail")
	}
}

func TestFeatureString(t *testing.T) {
	if FeatConv.String() != "SCONV" || FeatRSSIP.String() != "SRSSI_P" {
		t.Error("feature names drifted from Table I")
	}
	if Feature(99).String() == "" {
		t.Error("out-of-range stringer must not be empty")
	}
}

func TestKeyBinsInRangeProperty(t *testing.T) {
	s := NewStateSpace()
	f := func(conv, fc uint8, macs, cpu, mem, rw, rp float64) bool {
		o := Observation{
			NumConv: int(conv), NumFC: int(fc), MACs: macs,
			CoCPU: cpu, CoMem: mem, RSSIW: rw, RSSIP: rp,
		}
		parts := strings.Split(string(s.Key(o)), "|")
		return len(parts) == NumFeatures
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseKeyRoundTrip(t *testing.T) {
	s := NewStateSpace()
	key := s.Key(Observation{NumConv: 49, NumFC: 1, MACs: 1.43e9, RSSIW: -55, RSSIP: -55})
	bins, ok := parseKey(key)
	if !ok {
		t.Fatal("parseKey failed on a generated key")
	}
	if bins[FeatConv] != 1 || bins[FeatMAC] != 1 {
		t.Errorf("parsed bins = %v", bins)
	}
	if _, ok := parseKey("bogus"); ok {
		t.Error("malformed key must not parse")
	}
	if _, ok := parseKey("a|b|c|d|e|f|g|h"); ok {
		t.Error("non-numeric key must not parse")
	}
	// Disabled features parse as -1.
	abl := NewStateSpace().Disable(FeatConv)
	bins, ok = parseKey(abl.Key(Observation{}))
	if !ok || bins[FeatConv] != -1 {
		t.Error("ablated key parse broken")
	}
}

func TestStateDistance(t *testing.T) {
	a := [NumFeatures]int{1, 0, 0, 1, 0, 0, 1, 1}
	b := a
	if stateDistance(a, b) != 0 {
		t.Error("identical states must have distance 0")
	}
	// An NN-feature mismatch must dominate a variance mismatch.
	nnDiff := a
	nnDiff[FeatConv] = 2
	varDiff := a
	varDiff[FeatCoCPU] = 3
	if stateDistance(a, nnDiff) <= stateDistance(a, varDiff) {
		t.Error("NN-feature mismatches must cost more than variance mismatches")
	}
	// Ablated features are ignored.
	abl := a
	abl[FeatConv] = -1
	if stateDistance(a, abl) != 0 {
		t.Error("ablated features must not contribute")
	}
}

func TestSlowKeyForManyBins(t *testing.T) {
	// A custom discretizer with more than ten bins exercises the slow key
	// path; generated keys must still parse.
	s := NewStateSpace()
	cuts := make([]float64, 12)
	for i := range cuts {
		cuts[i] = float64(i+1) * 10
	}
	s.disc[FeatConv] = cluster.NewDiscretizer(cuts)
	key := s.Key(Observation{NumConv: 125}) // bin 12
	if !strings.Contains(string(key), "12") {
		t.Errorf("slow key = %q, want bin 12", key)
	}
	bins, ok := parseKey(key)
	if !ok || bins[FeatConv] != 12 {
		t.Errorf("slow key parse = %v, %v", bins, ok)
	}
}
