package core

import (
	"autoscale/internal/obs"
)

// rewardWindow is how many recent rewards the engine retains for the
// windowed mean-reward gauge. 256 steps ≈ a few minutes of inference at the
// paper's request rates — recent enough to show drift, wide enough to smooth
// per-request stochastic variance.
const rewardWindow = 256

// Health is a read-only sample of an engine's learning state, published by
// the telemetry plane (admin /metrics and /snapshot.json) and the qtable CLI.
// Sampling it never draws random numbers, advances clocks, or mutates the
// agent, so observation cannot perturb a deterministic run.
type Health struct {
	// Algorithm is the TD update rule ("Q-learning" or "SARSA").
	Algorithm string `json:"algorithm"`
	// Frozen reports exploitation-only mode.
	Frozen bool `json:"frozen"`
	// Epsilon is the current exploration probability.
	Epsilon float64 `json:"epsilon"`
	// States is the number of materialized Q rows; StateSpaceSize is the
	// full Table I grid and Coverage their ratio in [0,1].
	States         int     `json:"states"`
	StateSpaceSize int     `json:"state_space_size"`
	Coverage       float64 `json:"coverage"`
	// TotalVisits counts every action selection; MaxVisits is the hottest
	// state's count; VisitEntropy is the normalized Shannon entropy of the
	// visit distribution (1 = perfectly balanced experience).
	TotalVisits  int     `json:"total_visits"`
	MaxVisits    int     `json:"max_visits"`
	VisitEntropy float64 `json:"visit_entropy"`
	// ExplorationRatio is the fraction of selections that took the epsilon
	// branch (0 when nothing was selected yet); Selections is the total.
	ExplorationRatio float64 `json:"exploration_ratio"`
	Selections       int64   `json:"selections"`
	// TDErrorEMA is the agent's moving average of |TD error| over TDSamples
	// updates — the online convergence signal of Section VI-A.
	TDErrorEMA float64 `json:"td_error_ema"`
	TDSamples  int64   `json:"td_samples"`
	// MeanReward averages the last RewardSamples step rewards (window
	// capped at 256).
	MeanReward    float64 `json:"mean_reward"`
	RewardSamples int     `json:"reward_samples"`
	// VirtualS is the engine's virtual clock reading at sampling time.
	VirtualS float64 `json:"virtual_s"`
}

// Health samples the engine's learning-health gauges. It is safe to call
// concurrently with inference and is pure observation: no RNG draws, no
// clock movement, no agent mutation.
func (e *Engine) Health() Health {
	agent := e.agent.Load()
	e.mu.Lock()
	rewards := make([]float64, 0, e.rewardN)
	for i := 0; i < e.rewardN; i++ {
		rewards = append(rewards, e.rewards[i])
	}
	e.mu.Unlock()

	h := Health{
		Algorithm:      e.cfg.Algorithm.String(),
		Frozen:         agent.Frozen(),
		Epsilon:        agent.Epsilon(),
		States:         agent.NumStates(),
		StateSpaceSize: e.States.Size(),
		RewardSamples:  len(rewards),
		VirtualS:       e.Now(),
	}
	if h.StateSpaceSize > 0 {
		h.Coverage = float64(h.States) / float64(h.StateSpaceSize)
	}

	visits := agent.VisitCounts()
	counts := make([]int, 0, len(visits))
	for _, n := range visits {
		h.TotalVisits += n
		counts = append(counts, n)
	}
	h.MaxVisits = obs.MaxCount(counts)
	h.VisitEntropy = obs.Entropy(counts)

	explores, selections := agent.ExplorationStats()
	h.Selections = selections
	if selections > 0 {
		h.ExplorationRatio = float64(explores) / float64(selections)
	}
	h.TDErrorEMA, h.TDSamples = agent.TDErrorEMA()

	for _, r := range rewards {
		h.MeanReward += r
	}
	if len(rewards) > 0 {
		h.MeanReward /= float64(len(rewards))
	}
	return h
}

// noteRewardLocked pushes one step reward into the mean-reward ring.
// Caller holds e.mu.
func (e *Engine) noteRewardLocked(r float64) {
	if e.rewards == nil {
		e.rewards = make([]float64, rewardWindow)
	}
	e.rewards[e.rewardIdx] = r
	e.rewardIdx = (e.rewardIdx + 1) % rewardWindow
	if e.rewardN < rewardWindow {
		e.rewardN++
	}
}
