package core

import (
	"math"
	"testing"

	"autoscale/internal/dnn"
	"autoscale/internal/interfere"
	"autoscale/internal/sim"
	"autoscale/internal/soc"
)

func strongCond() sim.Conditions {
	return sim.Conditions{RSSIWLAN: -55, RSSIP2P: -55}
}

func newTestEngine(t *testing.T) *Engine {
	t.Helper()
	w := sim.NewWorld(soc.Mi8Pro(), 1)
	e, err := NewEngine(w, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestActionSpaceSize(t *testing.T) {
	// Mi8Pro: 23x2 CPU + 7x2 GPU + 1 DSP + 3 connected + 2 cloud = 66 —
	// the paper's "~66 actions augmented with quantization and DVFS".
	w := sim.NewWorld(soc.Mi8Pro(), 1)
	as := NewActionSpace(w)
	if as.Len() != 66 {
		t.Errorf("Mi8Pro action space = %d, want 66", as.Len())
	}
	// Galaxy S10e: 21x2 + 9x2 + 3 + 2 = 65.
	s10e := NewActionSpace(sim.NewWorld(soc.GalaxyS10e(), 1))
	if s10e.Len() != 65 {
		t.Errorf("S10e action space = %d, want 65", s10e.Len())
	}
	// Moto X Force: 15x2 + 6x2 + 3 + 2 = 47.
	moto := NewActionSpace(sim.NewWorld(soc.MotoXForce(), 1))
	if moto.Len() != 47 {
		t.Errorf("Moto action space = %d, want 47", moto.Len())
	}
}

func TestActionSpaceIndexRoundTrip(t *testing.T) {
	w := sim.NewWorld(soc.Mi8Pro(), 1)
	as := NewActionSpace(w)
	for i := 0; i < as.Len(); i++ {
		if as.Index(as.Target(i)) != i {
			t.Fatalf("index round-trip broken at %d", i)
		}
	}
	if as.Index(sim.Target{Location: sim.Cloud, Kind: soc.DSP}) != -1 {
		t.Error("unknown target must index to -1")
	}
	if got := len(as.Targets()); got != as.Len() {
		t.Error("Targets() length mismatch")
	}
}

func TestActionMask(t *testing.T) {
	w := sim.NewWorld(soc.Mi8Pro(), 1)
	as := NewActionSpace(w)
	bert := dnn.MustByName("MobileBERT")
	mask := as.Mask(bert)
	enabled := 0
	for i, ok := range mask {
		tgt := as.Target(i)
		if ok {
			enabled++
			if tgt.Location == sim.Local && tgt.Kind != soc.CPU {
				t.Errorf("BERT mask enables %v", tgt)
			}
		}
	}
	// CPU 23x2 + connected CPU + cloud CPU + cloud GPU = 49.
	if enabled != 49 {
		t.Errorf("BERT enabled actions = %d, want 49", enabled)
	}
	resnet := dnn.MustByName("ResNet 50")
	all := 0
	for _, ok := range as.Mask(resnet) {
		if ok {
			all++
		}
	}
	if all != 66 {
		t.Errorf("ResNet enabled actions = %d, want 66", all)
	}
}

func TestRewardEquation5(t *testing.T) {
	rc := RewardConfig{QoSTargetS: 0.050, AccuracyTarget: 65, Alpha: 1, Beta: 0.1}
	// Accuracy miss: R = (accuracy - 100) x scale.
	if got := rc.Reward(0.05, 0.01, 60); got != -4000 {
		t.Errorf("accuracy-miss reward = %v, want -4000", got)
	}
	// The miss must be worse than any valid execution, however expensive.
	if rc.Reward(0.05, 0.01, 60) >= rc.Reward(3.0, 0.2, 70) {
		t.Error("accuracy miss must dominate even multi-joule valid runs")
	}
	// QoS met: -E_mJ + alpha*QoS_ms + beta*acc.
	got := rc.Reward(0.030, 0.040, 70)
	want := -30.0 + 1*50 + 0.1*70
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("QoS-met reward = %v, want %v", got, want)
	}
	// QoS violated: no latency bonus.
	got = rc.Reward(0.030, 0.060, 70)
	want = -30.0 + 0.1*70
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("QoS-violated reward = %v, want %v", got, want)
	}
	// No accuracy target disables the miss branch.
	rc.AccuracyTarget = 0
	if got := rc.Reward(0.05, 0.01, 10); got <= -89 {
		t.Error("accuracy branch must be disabled when target is 0")
	}
}

func TestRewardPrefersQoSSatisfier(t *testing.T) {
	rc := RewardConfig{QoSTargetS: 0.050, Alpha: 1, Beta: 0.1}
	// A satisfying target at 109 mJ must out-reward a violating one at
	// 99 mJ (the Fig 9 ResNet 50 situation).
	sat := rc.Reward(0.109, 0.036, 74.5)
	vio := rc.Reward(0.099, 0.051, 74.5)
	if sat <= vio {
		t.Errorf("satisfier reward %v must beat violator %v", sat, vio)
	}
}

func TestEnergyEstimatorMAPE(t *testing.T) {
	est := NewEnergyEstimator(PaperEnergyMAPE, 7)
	meas := sim.Measurement{EnergyJ: 0.1}
	var sumAbs float64
	const n = 20000
	for i := 0; i < n; i++ {
		e := est.Estimate(meas)
		if e < 0 {
			t.Fatal("estimate must be non-negative")
		}
		sumAbs += math.Abs(e-0.1) / 0.1
	}
	mape := sumAbs / n
	if math.Abs(mape-PaperEnergyMAPE) > 0.01 {
		t.Errorf("estimator MAPE = %.3f, want ~%.3f (paper)", mape, PaperEnergyMAPE)
	}
	// A perfect estimator returns the truth.
	perfect := NewEnergyEstimator(0, 1)
	if perfect.Estimate(meas) != 0.1 {
		t.Error("zero-MAPE estimator must be exact")
	}
}

func TestEngineRunInference(t *testing.T) {
	e := newTestEngine(t)
	m := dnn.MustByName("MobileNet v1")
	d, err := e.RunInference(m, strongCond())
	if err != nil {
		t.Fatal(err)
	}
	if d.Measurement.LatencyS <= 0 || d.Measurement.EnergyJ <= 0 {
		t.Error("decision lacks a measurement")
	}
	if d.Target != e.Actions.Target(d.ActionIndex) {
		t.Error("decision target/index mismatch")
	}
	if d.QoSTargetS != sim.QoSNonStreamingS {
		t.Errorf("QoS = %v, want non-streaming default", d.QoSTargetS)
	}
	if d.EstimatedEnergyJ <= 0 {
		t.Error("Renergy estimate missing")
	}
	if !e.Agent().HasState(d.State) {
		t.Error("state not materialized")
	}
}

func TestEngineLearnsOptimalInOneState(t *testing.T) {
	e := newTestEngine(t)
	m := dnn.MustByName("Inception v1")
	c := strongCond()
	for i := 0; i < 300; i++ {
		if _, err := e.RunInference(m, c); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	tgt, err := e.Predict(m, c)
	if err != nil {
		t.Fatal(err)
	}
	opt, optMeas, err := e.World.BestTarget(m, c, sim.QoSNonStreamingS, 0)
	if err != nil {
		t.Fatal(err)
	}
	meas, err := e.World.Expected(m, tgt, c)
	if err != nil {
		t.Fatal(err)
	}
	if tgt != opt && meas.EnergyJ > optMeas.EnergyJ*1.15 {
		t.Errorf("after 300 runs engine picks %v (%.1f mJ), opt %v (%.1f mJ)",
			tgt, meas.EnergyJ*1e3, opt, optMeas.EnergyJ*1e3)
	}
	if meas.LatencyS > sim.QoSNonStreamingS*1.05 {
		t.Errorf("learned target violates QoS: %v", meas.LatencyS)
	}
}

func TestEngineQoSPerTask(t *testing.T) {
	e := newTestEngine(t)
	bert := dnn.MustByName("MobileBERT")
	d, err := e.RunInference(bert, strongCond())
	if err != nil {
		t.Fatal(err)
	}
	if d.QoSTargetS != sim.QoSTranslationS {
		t.Errorf("BERT QoS = %v, want translation 100ms", d.QoSTargetS)
	}
	// Streaming intensity changes the vision QoS.
	cfg := DefaultConfig()
	cfg.Intensity = sim.Streaming
	es, err := NewEngine(sim.NewWorld(soc.Mi8Pro(), 1), cfg)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := es.RunInference(dnn.MustByName("MobileNet v1"), strongCond())
	if err != nil {
		t.Fatal(err)
	}
	if d2.QoSTargetS != sim.QoSStreamingS {
		t.Errorf("streaming QoS = %v", d2.QoSTargetS)
	}
}

func TestEngineFreeze(t *testing.T) {
	e := newTestEngine(t)
	m := dnn.MustByName("MobileNet v1")
	for i := 0; i < 50; i++ {
		if _, err := e.RunInference(m, strongCond()); err != nil {
			t.Fatal(err)
		}
	}
	e.Freeze()
	s := e.ObserveState(m, strongCond())
	before := make([]float64, e.Actions.Len())
	for i := range before {
		before[i] = e.Agent().Q(s, i)
	}
	for i := 0; i < 20; i++ {
		if _, err := e.RunInference(m, strongCond()); err != nil {
			t.Fatal(err)
		}
	}
	for i := range before {
		if e.Agent().Q(s, i) != before[i] {
			t.Fatal("frozen engine must not learn")
		}
	}
}

func TestEngineSnapshotRestore(t *testing.T) {
	e := newTestEngine(t)
	m := dnn.MustByName("MobileNet v1")
	for i := 0; i < 30; i++ {
		e.RunInference(m, strongCond())
	}
	data, err := e.SnapshotQTable()
	if err != nil {
		t.Fatal(err)
	}
	e2 := newTestEngine(t)
	if err := e2.RestoreQTable(data); err != nil {
		t.Fatal(err)
	}
	s := e.ObserveState(m, strongCond())
	a1, err := e.Agent().BestAction(s, e.Actions.Mask(m))
	if err != nil {
		t.Fatal(err)
	}
	a2, err := e2.Agent().BestAction(s, e2.Actions.Mask(m))
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Error("restored engine disagrees with the original")
	}
	// Restoring into a different-size action space must fail.
	moto, err := NewEngine(sim.NewWorld(soc.MotoXForce(), 1), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := moto.RestoreQTable(data); err == nil {
		t.Error("cross-device restore should fail")
	}
}

func TestEngineTransferAcrossDevices(t *testing.T) {
	donor := newTestEngine(t)
	m := dnn.MustByName("Inception v1")
	for i := 0; i < 200; i++ {
		donor.RunInference(m, strongCond())
	}
	donor.Flush()

	moto, err := NewEngine(sim.NewWorld(soc.MotoXForce(), 2), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := moto.TransferFrom(donor); err != nil {
		t.Fatal(err)
	}
	// The donor's visited states must now exist in the recipient.
	if len(moto.Agent().States()) == 0 {
		t.Error("transfer produced no states")
	}
	// And the transferred knowledge should point off the CPU-FP32 action
	// for Inception v1 (the donor learned DSP/co-processor execution).
	s := moto.ObserveState(m, strongCond())
	if !moto.Agent().HasState(s) {
		t.Fatal("donor state missing after transfer")
	}
	if err := moto.TransferFrom(nil); err == nil {
		t.Error("nil donor should fail")
	}
}

func TestSeedIfUnseenPrefersSameModel(t *testing.T) {
	e := newTestEngine(t)
	m := dnn.MustByName("ResNet 50")
	// Learn under regular signal.
	reg := strongCond()
	for i := 0; i < 150; i++ {
		e.RunInference(m, reg)
	}
	e.Flush()
	sReg := e.ObserveState(m, reg)
	best, err := e.Agent().BestAction(sReg, e.Actions.Mask(m))
	if err != nil {
		t.Fatal(err)
	}
	// A new weak-signal state must seed from the same model's regular
	// state: the initial greedy action matches the learned one.
	weak := sim.Conditions{RSSIWLAN: -90, RSSIP2P: -55}
	sWeak := e.ObserveState(m, weak)
	if e.Agent().HasState(sWeak) {
		t.Fatal("weak state unexpectedly trained")
	}
	tgt, err := e.Predict(m, weak)
	if err != nil {
		t.Fatal(err)
	}
	if tgt != e.Actions.Target(best) {
		t.Errorf("seeded greedy %v differs from donor best %v", tgt, e.Actions.Target(best))
	}
}

func TestNewEngineValidation(t *testing.T) {
	if _, err := NewEngine(nil, DefaultConfig()); err == nil {
		t.Error("nil world should fail")
	}
	// A zero config falls back to defaults.
	e, err := NewEngine(sim.NewWorld(soc.Mi8Pro(), 1), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if e.Config().RL.LearningRate != 0.9 {
		t.Error("zero config must default to the paper's hyperparameters")
	}
}

func TestEngineAccuracyTarget(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Reward.AccuracyTarget = 65
	e, err := NewEngine(sim.NewWorld(soc.Mi8Pro(), 3), cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := dnn.MustByName("Inception v1")
	for i := 0; i < 300; i++ {
		if _, err := e.RunInference(m, strongCond()); err != nil {
			t.Fatal(err)
		}
	}
	e.Flush()
	tgt, err := e.Predict(m, strongCond())
	if err != nil {
		t.Fatal(err)
	}
	if m.Accuracy(tgt.Prec) < 65 {
		t.Errorf("learned target %v has accuracy %v < 65", tgt, m.Accuracy(tgt.Prec))
	}
}

func TestObservationUnderInterference(t *testing.T) {
	e := newTestEngine(t)
	m := dnn.MustByName("MobileNet v1")
	c := strongCond()
	c.Load = interfere.Load{CPUUtil: 0.8, MemUtil: 0.1}
	s1 := e.ObserveState(m, strongCond())
	s2 := e.ObserveState(m, c)
	if s1 == s2 {
		t.Error("interference must change the state")
	}
}

func TestFlushWithoutPending(t *testing.T) {
	e := newTestEngine(t)
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
}

func TestPredictOnFreshEngine(t *testing.T) {
	// With an empty table the greedy choice is a random-init pick but must
	// still be feasible.
	e := newTestEngine(t)
	bert := dnn.MustByName("MobileBERT")
	tgt, err := e.Predict(bert, strongCond())
	if err != nil {
		t.Fatal(err)
	}
	if !e.World.Feasible(bert, tgt) {
		t.Errorf("fresh predict returned infeasible %v", tgt)
	}
}

func TestDonorActionMapping(t *testing.T) {
	donor, err := NewEngine(sim.NewWorld(soc.Mi8Pro(), 1), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	dst, err := NewEngine(sim.NewWorld(soc.GalaxyS10e(), 1), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Every S10e action must map to a same-(location,kind,precision) donor
	// action except none (the Mi8Pro is a superset of the S10e's engines).
	for i := 0; i < dst.Actions.Len(); i++ {
		t1 := dst.Actions.Target(i)
		j := donorActionFor(t1, dst, donor)
		if j < 0 {
			t.Fatalf("no donor action for %v", t1)
		}
		t2 := donor.Actions.Target(j)
		if t1.Location != t2.Location || t1.Kind != t2.Kind || t1.Prec != t2.Prec {
			t.Fatalf("mapping %v -> %v changes identity", t1, t2)
		}
	}
	// The reverse direction has unmappable actions (the S10e has no DSP).
	dspT := sim.Target{Location: sim.Local, Kind: soc.DSP, Prec: dnn.INT8}
	if j := donorActionFor(dspT, donor, dst); j >= 0 {
		t.Error("Mi8Pro DSP must not map onto the S10e")
	}
	// Relative-step mapping: the S10e's top CPU step maps to the Mi8Pro's.
	s10eCPU := dst.World.Device.Processor(soc.CPU)
	top := sim.Target{Location: sim.Local, Kind: soc.CPU, Step: s10eCPU.Steps - 1, Prec: dnn.FP32}
	j := donorActionFor(top, dst, donor)
	mapped := donor.Actions.Target(j)
	mi8CPU := donor.World.Device.Processor(soc.CPU)
	if mapped.Step != mi8CPU.Steps-1 {
		t.Errorf("top step mapped to donor step %d, want %d", mapped.Step, mi8CPU.Steps-1)
	}
}
