package core

import (
	"sync"
	"sync/atomic"

	"autoscale/internal/dnn"
	"autoscale/internal/sim"
	"autoscale/internal/soc"
)

// ActionSpace is the fixed, index-stable list of execution targets AutoScale
// chooses among for a given world (Section V-C): every local engine at every
// DVFS step and supported precision — the DVFS- and quantization-augmented
// actions — plus the connected-edge and cloud engines. For the Mi8Pro world
// this yields the paper's ~66 actions.
//
// The per-model mask cache is copy-on-write: lookups load an immutable map
// through an atomic pointer (lock-free, so engines can read masks outside
// their own mutex), inserts copy-and-republish under masksMu. The model set
// is tiny and fixed after warmup, so copies are rare.
type ActionSpace struct {
	targets    []sim.Target
	world      *sim.World
	masks      atomic.Pointer[map[string][]bool]
	masksMu    sync.Mutex
	partitions []partitionSpec
}

// NewActionSpace enumerates the standard action space of world w.
func NewActionSpace(w *sim.World) *ActionSpace {
	var targets []sim.Target
	for _, p := range w.Device.Processors {
		for _, prec := range p.Precisions {
			for step := 0; step < p.Steps; step++ {
				targets = append(targets, sim.Target{Location: sim.Local, Kind: p.Kind, Step: step, Prec: prec})
			}
		}
	}
	for _, loc := range []sim.Location{sim.Connected, sim.Cloud} {
		var sys *soc.Device
		if loc == sim.Connected {
			sys = w.Tablet
		} else {
			sys = w.Server
		}
		for _, p := range sys.Processors {
			prec := dnn.FP32
			if p.Kind == soc.DSP || p.Kind == soc.NPU {
				prec = dnn.INT8
			}
			targets = append(targets, sim.Target{Location: loc, Kind: p.Kind, Prec: prec})
		}
	}
	a := &ActionSpace{targets: targets, world: w}
	empty := make(map[string][]bool)
	a.masks.Store(&empty)
	return a
}

// NewActionSpaceWithPartitions enumerates the standard action space plus the
// layer-granularity partition actions of the paper's footnote 4 extension.
func NewActionSpaceWithPartitions(w *sim.World) *ActionSpace {
	a := NewActionSpace(w)
	a.appendPartitionActions()
	return a
}

// Len returns the number of actions.
func (a *ActionSpace) Len() int { return len(a.targets) }

// Target returns the execution target of action index i.
func (a *ActionSpace) Target(i int) sim.Target { return a.targets[i] }

// Targets returns a copy of the full target list.
func (a *ActionSpace) Targets() []sim.Target { return append([]sim.Target(nil), a.targets...) }

// Index returns the action index of target t, or -1.
func (a *ActionSpace) Index(t sim.Target) int {
	for i, u := range a.targets {
		if u == t {
			return i
		}
	}
	return -1
}

// Mask returns the feasibility mask of model m: actions whose engine cannot
// execute the model (recurrent layers on mobile co-processors, unsupported
// precisions) are disabled. Masks are cached per model name and must not be
// mutated by callers. Cache hits are lock-free.
func (a *ActionSpace) Mask(m *dnn.Model) []bool {
	if cached, ok := (*a.masks.Load())[m.Name]; ok {
		return cached
	}
	mask := make([]bool, len(a.targets))
	for i, t := range a.targets {
		if a.IsPartition(i) {
			mask[i] = a.partitionFeasible(m, i)
			continue
		}
		mask[i] = a.world.Feasible(m, t)
	}
	a.masksMu.Lock()
	defer a.masksMu.Unlock()
	old := *a.masks.Load()
	if cached, ok := old[m.Name]; ok {
		return cached // lost the insert race; keep the published slice
	}
	next := make(map[string][]bool, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[m.Name] = mask
	a.masks.Store(&next)
	return mask
}

// MaskWith returns the feasibility mask of model m intersected with an
// additional allow predicate over targets — the hook circuit breakers use
// to mask unhealthy remote sites out of the action space. The result is a
// fresh slice (the per-model cache is never mutated). If the intersection
// would disable every action, the unfiltered mask is returned instead:
// degrading to a full action space beats bricking selection entirely.
func (a *ActionSpace) MaskWith(m *dnn.Model, allow func(sim.Target) bool) []bool {
	return a.maskWith(m, allow, make([]bool, len(a.targets)))
}

// MaskWithBuf is MaskWith writing into a caller-owned scratch buffer (grown
// through *buf as needed) so steady-state filtered masks allocate nothing.
// The returned slice aliases *buf when allow is non-nil and must be consumed
// before the next call with the same buffer.
func (a *ActionSpace) MaskWithBuf(m *dnn.Model, allow func(sim.Target) bool, buf *[]bool) []bool {
	if allow == nil {
		return a.Mask(m)
	}
	if cap(*buf) < len(a.targets) {
		*buf = make([]bool, len(a.targets))
	}
	return a.maskWith(m, allow, (*buf)[:len(a.targets)])
}

func (a *ActionSpace) maskWith(m *dnn.Model, allow func(sim.Target) bool, out []bool) []bool {
	base := a.Mask(m)
	if allow == nil {
		return base
	}
	any := false
	for i, ok := range base {
		out[i] = false
		if ok && allow(a.targets[i]) {
			out[i] = true
			any = true
		}
	}
	if !any {
		copy(out, base)
	}
	return out
}
