package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"autoscale/internal/dnn"
	"autoscale/internal/exec"
	"autoscale/internal/rl"
	"autoscale/internal/sim"
)

// Config assembles an AutoScale engine.
type Config struct {
	// Reward parameterizes equation (5). If Reward.QoSTargetS is zero the
	// engine derives the QoS target per request from the model's task and
	// the configured Intensity (Section V-B scenarios).
	Reward RewardConfig
	// Intensity selects the computer-vision usage mode used to derive
	// per-request QoS targets when Reward.QoSTargetS is zero.
	Intensity sim.Intensity
	// RL holds the Q-learning hyperparameters.
	RL rl.Config
	// EnergyMAPE is the relative error of the Renergy estimator
	// (paper: 0.073). Non-positive means a perfect estimator.
	EnergyMAPE float64
	// Algorithm selects the TD update rule: AlgorithmQLearning (default,
	// the paper's choice) or AlgorithmSARSA (the on-policy alternative
	// the paper weighs it against).
	Algorithm Algorithm
	// PartitionActions adds the layer-granularity partition actions of
	// the paper's footnote 4 extension to the action space.
	PartitionActions bool
	// States overrides the Table I state space (nil = paper default).
	States *StateSpace
	// Seed drives the energy estimator.
	Seed int64
}

// DefaultConfig returns the paper's configuration — gamma = 0.9, mu = 0.1,
// epsilon = 0.1, beta = 0.1, 7.3% Renergy MAPE — with the latency weight
// alpha raised to 1.0 per the boundary-valued latency term (see
// RewardConfig and DESIGN.md).
func DefaultConfig() Config {
	return Config{
		Reward:     RewardConfig{Alpha: 1.0, Beta: 0.1},
		RL:         rl.DefaultConfig(),
		EnergyMAPE: PaperEnergyMAPE,
		Seed:       1,
	}
}

// Algorithm selects the engine's temporal-difference update rule.
type Algorithm int

// Supported update rules.
const (
	// AlgorithmQLearning is the paper's off-policy choice (Algorithm 1).
	AlgorithmQLearning Algorithm = iota
	// AlgorithmSARSA bootstraps from the action the policy actually takes
	// next; same table, same overhead, on-policy semantics.
	AlgorithmSARSA
)

// String returns the algorithm name.
func (a Algorithm) String() string {
	if a == AlgorithmSARSA {
		return "SARSA"
	}
	return "Q-learning"
}

// Decision records one engine step: what was observed, chosen, measured and
// learned.
type Decision struct {
	State       rl.State
	ActionIndex int
	Target      sim.Target
	Measurement sim.Measurement
	// EstimatedEnergyJ is the Renergy fed to the reward.
	EstimatedEnergyJ float64
	Reward           float64
	QoSTargetS       float64
	QoSViolated      bool
	AccuracyMissed   bool
}

// pendingUpdate holds the (S, A, R) of the previous step; Algorithm 1
// completes the Q update once the next state S' is observed. The state is
// kept as its dense index — no key formatting on the decide path.
type pendingUpdate struct {
	stateIdx int32
	action   int
	reward   float64
}

// Engine is the AutoScale execution-scaling engine of Fig 8. It is safe for
// concurrent use by multiple services sharing one device: the paper deploys
// AutoScale "as part of intelligent services" on the mobile CPU, and a phone
// runs several such services at once — and the serving gateway drives one
// engine per device from its worker goroutines.
//
// Concurrency contract: every method serializes on one mutex, so each
// RunInference step (observe, select, execute, reward, stage update) is
// atomic with respect to the others. Under concurrent callers the deferred
// Algorithm 1 update chain interleaves across callers — each step's staged
// (S, A, R) completes against the next observed state regardless of which
// caller observes it — which matches the paper's single-decision-stream
// semantics: the device executes one inference at a time, so the engine sees
// one totally ordered decision sequence.
type Engine struct {
	World   *sim.World
	Actions *ActionSpace
	States  *StateSpace

	// agent is published through an atomic pointer so pure-read paths
	// (Predict on a materialized state, Agent, Health) never take mu; the
	// swaps (NewEngine, Reset, RestoreQTable) serialize on mu.
	agent atomic.Pointer[rl.Agent]

	mu         sync.Mutex
	cfg        Config
	sarsa      *rl.SarsaAgent // non-nil when cfg.Algorithm == AlgorithmSARSA
	est        *EnergyEstimator
	pending    pendingUpdate
	hasPending bool
	// maskBuf is the step's scratch feasibility mask: the filtered mask is
	// consumed within the step (selection + the deferred update completed
	// at the next step's head both use the mask computed then), so one
	// buffer per engine, guarded by mu, makes MaskWith allocation-free.
	maskBuf []bool
	// root and steps derive a per-step execution context for legacy
	// RunInference calls (callers that don't pass their own context);
	// stepCtx is the reused scratch those steps are keyed into (guarded by
	// mu, never retained past the step).
	root    *exec.Context
	steps   uint64
	stepCtx exec.Context
	// rewards is a ring of the last rewardWindow step rewards feeding the
	// Health gauge (see health.go).
	rewards   []float64
	rewardIdx int
	rewardN   int
}

// NewEngine builds an engine for a world.
func NewEngine(w *sim.World, cfg Config) (*Engine, error) {
	if w == nil {
		return nil, errors.New("core: nil world")
	}
	if cfg.Reward.Alpha == 0 && cfg.Reward.Beta == 0 && cfg.RL.LearningRate == 0 {
		cfg = DefaultConfig()
	}
	states := cfg.States
	if states == nil {
		states = NewStateSpace()
	}
	actions := NewActionSpace(w)
	if cfg.PartitionActions {
		actions = NewActionSpaceWithPartitions(w)
	}
	e := &Engine{
		World:   w,
		Actions: actions,
		States:  states,
		cfg:     cfg,
		est:     NewEnergyEstimator(cfg.EnergyMAPE, cfg.Seed),
		root:    exec.NewRoot(cfg.Seed).Child("engine"),
	}
	// The agent interns states on the engine's own grid, so the whole
	// decide path runs on dense indices.
	if cfg.Algorithm == AlgorithmSARSA {
		sarsa, err := rl.NewSarsaAgentInterned(cfg.RL, actions.Len(), states)
		if err != nil {
			return nil, err
		}
		e.sarsa = sarsa
		e.agent.Store(sarsa.Agent)
	} else {
		agent, err := rl.NewAgentInterned(cfg.RL, actions.Len(), states)
		if err != nil {
			return nil, err
		}
		e.agent.Store(agent)
	}
	return e, nil
}

// Agent exposes the underlying Q-learning agent (for persistence, transfer
// and inspection). The agent is itself safe for concurrent use; the field is
// an atomic pointer, so this never blocks on a step in flight.
func (e *Engine) Agent() *rl.Agent { return e.agent.Load() }

// Config returns the engine configuration.
func (e *Engine) Config() Config { return e.cfg }

// qosFor resolves the latency constraint for a request.
func (e *Engine) qosFor(m *dnn.Model) float64 {
	if e.cfg.Reward.QoSTargetS > 0 {
		return e.cfg.Reward.QoSTargetS
	}
	return sim.QoSFor(m.Task == dnn.Translation, e.cfg.Intensity)
}

// ObserveState discretizes the current request into its Q-table state.
func (e *Engine) ObserveState(m *dnn.Model, c sim.Conditions) rl.State {
	return e.States.Key(ObservationOf(m, c))
}

// Predict returns the engine's current greedy choice for a request without
// executing or learning — the trained-table exploitation path whose lookup
// overhead Section VI-C reports.
//
// For a state the agent has already materialized this is the zero-alloc,
// lock-free Decide fast path: dense index arithmetic, cached feasibility
// mask, one atomic table read. Never-seen states fall to the writer path,
// which seeds the row from the nearest trained neighbour exactly as before.
func (e *Engine) Predict(m *dnn.Model, c sim.Conditions) (sim.Target, error) {
	sIdx := e.States.Index(ObservationOf(m, c))
	ag := e.agent.Load()
	if ag.HasStateIdx(sIdx) {
		idx, err := ag.BestActionIdx(sIdx, e.Actions.Mask(m))
		if err != nil {
			return sim.Target{}, fmt.Errorf("core: predict %s: %w", m.Name, err)
		}
		return e.Actions.Target(idx), nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	ag = e.agent.Load()
	e.seedIfUnseenIdx(ag, sIdx)
	idx, err := ag.BestActionIdx(sIdx, e.Actions.Mask(m))
	if err != nil {
		return sim.Target{}, fmt.Errorf("core: predict %s: %w", m.Name, err)
	}
	return e.Actions.Target(idx), nil
}

// RunInference performs one full engine step: observe the state (completing
// the previous step's deferred Q update with it, per Algorithm 1), select an
// action epsilon-greedily, execute the inference on the simulated world,
// estimate Renergy, compute the reward and stage the update.
//
// It derives a per-step execution context from the engine's root, so the
// world's noise and the Renergy estimation error are a pure function of the
// engine seed and the step index.
func (e *Engine) RunInference(m *dnn.Model, c sim.Conditions) (Decision, error) {
	return e.RunInferenceCtx(nil, m, c)
}

// RunInferenceCtx is RunInference with an explicit request context: the
// simulator's stochastic draws and the Renergy estimation error come from
// ctx's named streams, tying them to the request's identity rather than
// the engine's call history. A nil ctx derives one from the engine's
// internal step counter.
func (e *Engine) RunInferenceCtx(ctx *exec.Context, m *dnn.Model, c sim.Conditions) (Decision, error) {
	return e.RunInferenceFiltered(ctx, m, c, nil)
}

// RunInferenceFiltered is RunInferenceCtx with an additional allow
// predicate over targets: actions the predicate rejects are masked out of
// selection for this step only (falling back to the unfiltered mask if the
// predicate would reject everything) — the entry point circuit breakers
// use to steer requests away from unhealthy remote sites. The observed
// Q-state uses the conditions as the world actually degrades them
// (scripted RSSI ramps applied), so the agent learns against what
// execution will see.
func (e *Engine) RunInferenceFiltered(ctx *exec.Context, m *dnn.Model, c sim.Conditions, allow func(sim.Target) bool) (Decision, error) {
	return e.runInference(ctx, m, c, allow, nil)
}

// DecisionProv captures one decide step's provenance for the tracing plane:
// the dense state index, the mask actually applied (breakers and lane
// filters included), how many actions it disabled, and the agent's
// selection provenance. Slices are truncated and refilled in place, so a
// caller-owned DecisionProv is allocation-free in steady state.
type DecisionProv struct {
	StateIdx  int32
	MaskedOut int
	Mask      []bool
	Sel       rl.SelectProv
}

// RunInferenceProv is RunInferenceFiltered with decision-provenance
// capture into prov (which must be non-nil). The selection mirrors the
// plain path draw for draw, so traced and untraced runs of the same seed
// take identical decisions.
func (e *Engine) RunInferenceProv(ctx *exec.Context, m *dnn.Model, c sim.Conditions, allow func(sim.Target) bool, prov *DecisionProv) (Decision, error) {
	return e.runInference(ctx, m, c, allow, prov)
}

// runInference is the shared step body; prov nil is the untraced hot path
// (one pointer test of overhead, no allocations).
func (e *Engine) runInference(ctx *exec.Context, m *dnn.Model, c sim.Conditions, allow func(sim.Target) bool, prov *DecisionProv) (Decision, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if ctx == nil {
		e.steps++
		e.root.Rekey(&e.stepCtx, "step", e.steps)
		ctx = &e.stepCtx
	}
	ag := e.agent.Load()
	mask := e.Actions.MaskWithBuf(m, allow, &e.maskBuf)
	sIdx := e.States.Index(ObservationOf(m, e.World.ObservedConditions(ctx, c)))
	e.seedIfUnseenIdx(ag, sIdx)

	// Q-learning completes the previous step's update as soon as S' is
	// known, so the selection below sees the freshest values (Algorithm 1).
	if e.sarsa == nil && e.hasPending {
		if err := ag.UpdateIdx(e.pending.stateIdx, e.pending.action, e.pending.reward, sIdx, mask); err != nil {
			return Decision{}, err
		}
		e.hasPending = false
	}

	var idx int
	var err error
	if prov == nil {
		idx, err = ag.SelectActionIdx(sIdx, mask)
	} else {
		prov.StateIdx = sIdx
		prov.Mask = append(prov.Mask[:0], mask...)
		prov.MaskedOut = 0
		for _, ok := range prov.Mask {
			if !ok {
				prov.MaskedOut++
			}
		}
		idx, err = ag.SelectActionProvIdx(sIdx, mask, &prov.Sel)
	}
	if err != nil {
		return Decision{}, fmt.Errorf("core: select for %s: %w", m.Name, err)
	}

	// SARSA bootstraps from the action the policy actually took in S'.
	if e.sarsa != nil && e.hasPending {
		if err := e.sarsa.UpdateSarsaIdx(e.pending.stateIdx, e.pending.action, e.pending.reward, sIdx, idx); err != nil {
			return Decision{}, err
		}
		e.hasPending = false
	}
	target := e.Actions.Target(idx)

	meas, err := e.Actions.ExecuteCtx(ctx, m, idx, c)
	if err != nil {
		return Decision{}, err
	}

	qos := e.qosFor(m)
	rc := e.cfg.Reward
	rc.QoSTargetS = qos
	energyEst := e.est.EstimateCtx(ctx, meas)
	reward := rc.Reward(energyEst, meas.LatencyS, meas.Accuracy)
	e.noteRewardLocked(reward)

	if !ag.Frozen() {
		e.pending = pendingUpdate{stateIdx: sIdx, action: idx, reward: reward}
		e.hasPending = true
	}

	return Decision{
		State:            e.States.KeyOf(sIdx),
		ActionIndex:      idx,
		Target:           target,
		Measurement:      meas,
		EstimatedEnergyJ: energyEst,
		Reward:           reward,
		QoSTargetS:       qos,
		QoSViolated:      meas.LatencyS > qos,
		AccuracyMissed:   rc.AccuracyTarget > 0 && meas.Accuracy < rc.AccuracyTarget,
	}, nil
}

// StepContext derives an auxiliary execution context from the engine's
// root, sharing its virtual clock — the serving layer uses it for retry and
// hedge executions so their draws key on (engine seed, purpose, ids) and
// their simulated time lands on the same timeline the fault schedules are
// scripted against.
func (e *Engine) StepContext(purpose string, ids ...uint64) *exec.Context {
	return e.root.Child(purpose, ids...)
}

// Now returns the engine's virtual time: the simulated seconds accumulated
// by every inference executed through it (legacy and explicit-context calls
// share the root clock). Fault schedules and the serving layer's resilience
// logic key on this time base.
func (e *Engine) Now() float64 { return e.root.Now() }

// AdvanceTo fast-forwards the engine's virtual clock to t if it lags behind
// (idle time: the engine accumulated less busy time than has elapsed on the
// caller's arrival clock). Never moves the clock backwards. The serving
// layer uses it so an arrival-stamped request on an idle lane starts at its
// arrival time, making Now() a true virtual wall clock rather than a pure
// busy-time accumulator.
func (e *Engine) AdvanceTo(t float64) {
	if d := t - e.root.Now(); d > 0 {
		e.root.Advance(d)
	}
}

// Reset discards the engine's in-memory learning state — fresh agent,
// no staged update — while keeping the world, action space, estimator and
// virtual clock. This models a worker crash: everything not checkpointed is
// gone, but simulated time keeps flowing. Callers typically follow with a
// warm-start from the last durable checkpoint.
func (e *Engine) Reset() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.cfg.Algorithm == AlgorithmSARSA {
		sarsa, err := rl.NewSarsaAgentInterned(e.cfg.RL, e.Actions.Len(), e.States)
		if err != nil {
			return err
		}
		e.sarsa = sarsa
		e.agent.Store(sarsa.Agent)
	} else {
		agent, err := rl.NewAgentInterned(e.cfg.RL, e.Actions.Len(), e.States)
		if err != nil {
			return err
		}
		e.agent.Store(agent)
		e.sarsa = nil
	}
	e.hasPending = false
	e.rewards = nil
	e.rewardIdx, e.rewardN = 0, 0
	return nil
}

// Flush applies any staged Q update using the last observed state as S'
// (end-of-episode approximation). Call it when a training run ends.
func (e *Engine) Flush() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.hasPending {
		return nil
	}
	p := e.pending
	e.hasPending = false
	return e.agent.Load().UpdateIdx(p.stateIdx, p.action, p.reward, p.stateIdx, nil)
}

// Freeze switches the engine to exploitation-only mode (greedy policy, no
// learning), discarding any staged update.
func (e *Engine) Freeze() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.hasPending = false
	e.agent.Load().Freeze()
}

// TransferFrom warm-starts this engine's Q-table from another engine — the
// paper's learning transfer across devices (Section VI-C). Action spaces may
// differ (other DVFS ladders, missing co-processors): each local action maps
// to the donor action with the same location/kind/precision and the nearest
// relative DVFS position; actions with no donor counterpart keep their local
// initialization.
func (e *Engine) TransferFrom(donor *Engine) error {
	if donor == nil {
		return errors.New("core: nil donor engine")
	}
	mapping := make([]int, e.Actions.Len())
	for i := range mapping {
		mapping[i] = donorActionFor(e.Actions.Target(i), e, donor)
	}
	// Snapshot both agent fields under their engines' locks (a concurrent
	// RestoreQTable may swap either); ImportMapped then locks the agents
	// themselves, one at a time, so a live donor keeps serving.
	return e.Agent().ImportMapped(donor.Agent(), mapping)
}

// donorActionFor finds the donor action semantically closest to target t, or
// -1 when the donor has no engine of that location/kind/precision.
func donorActionFor(t sim.Target, dst, donor *Engine) int {
	rel := func(e *Engine, u sim.Target) float64 {
		if u.Location != sim.Local {
			return 0
		}
		proc := e.World.Device.Processor(u.Kind)
		if proc == nil || proc.Steps <= 1 {
			return 1
		}
		return float64(u.Step) / float64(proc.Steps-1)
	}
	want := rel(dst, t)
	best, bestDist := -1, 0.0
	for j, u := range donor.Actions.Targets() {
		if u.Location != t.Location || u.Kind != t.Kind || u.Prec != t.Prec {
			continue
		}
		d := rel(donor, u) - want
		if d < 0 {
			d = -d
		}
		if best < 0 || d < bestDist {
			best, bestDist = j, d
		}
	}
	return best
}

// SnapshotQTable serializes the engine's Q-table.
func (e *Engine) SnapshotQTable() ([]byte, error) { return e.Agent().Snapshot() }

// RestoreQTable replaces the engine's agent with one restored from a
// snapshot; the action-space size must match. The engine keeps its
// configured update rule: a SARSA engine re-wraps the restored table instead
// of silently falling back to Q-learning.
func (e *Engine) RestoreQTable(data []byte) error {
	// Re-home the snapshot onto this engine's state grid: keys the grid can
	// render land on their dense indices (keeping the zero-alloc decide
	// path); keys from a foreign state space go to the agent's overflow
	// interner and keep working through the string API.
	ag, err := rl.RestoreInterned(data, e.States)
	if err != nil {
		return err
	}
	if ag.NumActions() != e.Actions.Len() {
		return fmt.Errorf("core: snapshot has %d actions, world has %d", ag.NumActions(), e.Actions.Len())
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.agent.Store(ag)
	e.sarsa = nil
	if e.cfg.Algorithm == AlgorithmSARSA {
		e.sarsa = &rl.SarsaAgent{Agent: ag}
	}
	e.hasPending = false
	return nil
}
