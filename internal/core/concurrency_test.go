package core

import (
	"sync"
	"testing"

	"autoscale/internal/dnn"
	"autoscale/internal/sim"
	"autoscale/internal/soc"
)

// TestEngineConcurrentCallers is the -race regression test for the engine's
// concurrency contract: RunInference, Predict, snapshots, transfer and a
// Q-table restore all racing one engine must stay consistent — the serving
// gateway relies on exactly this.
func TestEngineConcurrentCallers(t *testing.T) {
	e, err := NewEngine(sim.NewWorld(soc.Mi8Pro(), 1), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	donor, err := NewEngine(sim.NewWorld(soc.GalaxyS10e(), 2), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	models := []*dnn.Model{dnn.MustByName("MobileNet v1"), dnn.MustByName("ResNet 50")}
	c := sim.Conditions{RSSIWLAN: -55, RSSIP2P: -55}
	// Pre-train enough that the snapshot/restore goroutine has a real table.
	for i := 0; i < 50; i++ {
		if _, err := donor.RunInference(models[0], c); err != nil {
			t.Fatal(err)
		}
	}

	const workers, each = 8, 60
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			m := models[g%len(models)]
			for i := 0; i < each; i++ {
				switch (g + i) % 5 {
				case 0:
					if _, err := e.Predict(m, c); err != nil {
						t.Error(err)
						return
					}
				case 1:
					if _, err := e.SnapshotQTable(); err != nil {
						t.Error(err)
						return
					}
				case 2:
					if err := e.TransferFrom(donor); err != nil {
						t.Error(err)
						return
					}
				case 3:
					_ = e.Agent().MemoryBytes()
				default:
					if _, err := e.RunInference(m, c); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(g)
	}
	// One goroutine keeps swapping the agent out from under everyone — the
	// worst case the locking has to survive.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			data, err := e.SnapshotQTable()
			if err != nil {
				t.Error(err)
				return
			}
			if err := e.RestoreQTable(data); err != nil {
				t.Error(err)
				return
			}
			if err := e.Flush(); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()

	// The engine must still function and its table must still serialize.
	if _, err := e.RunInference(models[0], c); err != nil {
		t.Fatal(err)
	}
	if _, err := e.SnapshotQTable(); err != nil {
		t.Fatal(err)
	}
}
