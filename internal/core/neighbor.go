package core

import (
	"strconv"
	"strings"

	"autoscale/internal/rl"
)

// State-lattice generalization. Tabular Q-learning has no notion of state
// similarity, yet the paper's leave-one-out evaluation tests each network
// with a table trained on the *other* networks — whose layer-count and MAC
// bins need not coincide — and reports that "an RL model trained in a device
// has this energy trend knowledge implicitly" (Section IV). We realize that
// implicit generalization explicitly: when the engine first observes a state
// with no Q row, it seeds the row from the nearest trained state on the
// feature lattice (exact match required on the runtime-variance features
// when possible, smallest bin distance on the NN features). Online learning
// then refines the seeded row. DESIGN.md documents this substitution.

// parseKey splits a state key into per-feature bin indices; disabled
// features ("*") parse as -1.
func parseKey(s rl.State) ([NumFeatures]int, bool) {
	var bins [NumFeatures]int
	parts := strings.Split(string(s), "|")
	if len(parts) != NumFeatures {
		return bins, false
	}
	for i, p := range parts {
		if p == "*" {
			bins[i] = -1
			continue
		}
		v, err := strconv.Atoi(p)
		if err != nil {
			return bins, false
		}
		bins[i] = v
	}
	return bins, true
}

// nnWeight makes mismatches on NN features much more expensive than
// runtime-variance mismatches: a state of the *same network* under different
// variance is a far better donor than a different network under the same
// variance, because the action ranking is dominated by the network's
// compute/memory profile and the engine re-adapts to variance online within
// a few runs.
const nnWeight = 100

func stateDistance(a, b [NumFeatures]int) int {
	d := 0
	for f := 0; f < NumFeatures; f++ {
		if a[f] < 0 || b[f] < 0 {
			continue // ablated feature
		}
		diff := a[f] - b[f]
		if diff < 0 {
			diff = -diff
		}
		if Feature(f) < FeatCoCPU {
			diff *= nnWeight
		}
		d += diff
	}
	return d
}

// seedIfUnseenIdx seeds the Q row of the state at dense index i from the
// nearest visited state. It is a no-op when the state already has a row or
// no other state exists. The scan walks materialized states in ascending
// index order — for grid-interned states the same order the map-backed table
// produced by sorting string keys, so the first-wins tie-break is preserved.
func (e *Engine) seedIfUnseenIdx(ag *rl.Agent, i int32) {
	if ag.HasStateIdx(i) {
		return
	}
	var target [NumFeatures]int
	if !e.States.BinsOf(i, &target) {
		return
	}
	bestDist := int64(-1)
	var best int32
	ag.ForEachMaterialized(func(j int32, key rl.State) {
		var cb [NumFeatures]int
		if !e.States.BinsOf(j, &cb) {
			// Overflow index: a state restored from a foreign grid.
			// Fall back to parsing its key.
			pb, ok := parseKey(key)
			if !ok {
				return
			}
			cb = pb
		}
		d := int64(stateDistance(target, cb))
		if bestDist < 0 || d < bestDist {
			bestDist, best = d, j
		}
	})
	if bestDist >= 0 {
		// Both indices are interned, so the copy cannot fail.
		_ = ag.CopyRowIdx(i, best)
	}
}
