package core

import (
	"strconv"
	"strings"

	"autoscale/internal/rl"
)

// State-lattice generalization. Tabular Q-learning has no notion of state
// similarity, yet the paper's leave-one-out evaluation tests each network
// with a table trained on the *other* networks — whose layer-count and MAC
// bins need not coincide — and reports that "an RL model trained in a device
// has this energy trend knowledge implicitly" (Section IV). We realize that
// implicit generalization explicitly: when the engine first observes a state
// with no Q row, it seeds the row from the nearest trained state on the
// feature lattice (exact match required on the runtime-variance features
// when possible, smallest bin distance on the NN features). Online learning
// then refines the seeded row. DESIGN.md documents this substitution.

// parseKey splits a state key into per-feature bin indices; disabled
// features ("*") parse as -1.
func parseKey(s rl.State) ([NumFeatures]int, bool) {
	var bins [NumFeatures]int
	parts := strings.Split(string(s), "|")
	if len(parts) != NumFeatures {
		return bins, false
	}
	for i, p := range parts {
		if p == "*" {
			bins[i] = -1
			continue
		}
		v, err := strconv.Atoi(p)
		if err != nil {
			return bins, false
		}
		bins[i] = v
	}
	return bins, true
}

// nnWeight makes mismatches on NN features much more expensive than
// runtime-variance mismatches: a state of the *same network* under different
// variance is a far better donor than a different network under the same
// variance, because the action ranking is dominated by the network's
// compute/memory profile and the engine re-adapts to variance online within
// a few runs.
const nnWeight = 100

func stateDistance(a, b [NumFeatures]int) int {
	d := 0
	for f := 0; f < NumFeatures; f++ {
		if a[f] < 0 || b[f] < 0 {
			continue // ablated feature
		}
		diff := a[f] - b[f]
		if diff < 0 {
			diff = -diff
		}
		if Feature(f) < FeatCoCPU {
			diff *= nnWeight
		}
		d += diff
	}
	return d
}

// seedIfUnseen seeds the Q row of s from the nearest visited state. It is a
// no-op when s already has a row or no other state exists.
func (e *Engine) seedIfUnseen(s rl.State) {
	if e.agent.HasState(s) {
		return
	}
	target, ok := parseKey(s)
	if !ok {
		return
	}
	bestDist := -1
	var best rl.State
	for _, cand := range e.agent.States() {
		cb, ok := parseKey(cand)
		if !ok {
			continue
		}
		d := stateDistance(target, cb)
		if bestDist < 0 || d < bestDist {
			bestDist, best = d, cand
		}
	}
	if bestDist >= 0 {
		e.agent.CopyRow(s, best)
	}
}
