package cluster

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestDBSCANTwoBlobs(t *testing.T) {
	var pts []Point
	for i := 0; i < 10; i++ {
		pts = append(pts, Point{float64(i) * 0.1})    // blob near 0
		pts = append(pts, Point{10 + float64(i)*0.1}) // blob near 10
	}
	labels, k, err := DBSCAN(pts, 0.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if k != 2 {
		t.Fatalf("clusters = %d, want 2", k)
	}
	// Points within a blob share a label; blobs differ.
	if labels[0] != labels[2] {
		t.Error("same-blob points split")
	}
	if labels[0] == labels[1] {
		t.Error("different blobs merged")
	}
}

func TestDBSCANNoise(t *testing.T) {
	pts := []Point{{0}, {0.1}, {0.2}, {0.3}, {100}}
	labels, k, err := DBSCAN(pts, 0.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if k != 1 {
		t.Fatalf("clusters = %d, want 1", k)
	}
	if labels[4] != Noise {
		t.Errorf("outlier label = %d, want Noise", labels[4])
	}
}

func TestDBSCANErrors(t *testing.T) {
	if _, _, err := DBSCAN([]Point{{1}}, 0, 1); err == nil {
		t.Error("eps=0 should fail")
	}
	if _, _, err := DBSCAN([]Point{{1}}, 1, 0); err == nil {
		t.Error("minPts=0 should fail")
	}
	if _, _, err := DBSCAN([]Point{{1}, {1, 2}}, 1, 1); err == nil {
		t.Error("mixed dimensionality should fail")
	}
	labels, k, err := DBSCAN(nil, 1, 1)
	if err != nil || labels != nil || k != 0 {
		t.Error("empty input should be a no-op")
	}
}

func TestDBSCAN2D(t *testing.T) {
	var pts []Point
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 30; i++ {
		pts = append(pts, Point{rng.Float64(), rng.Float64()})
		pts = append(pts, Point{5 + rng.Float64(), 5 + rng.Float64()})
	}
	_, k, err := DBSCAN(pts, 1.0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if k != 2 {
		t.Errorf("2D clusters = %d, want 2", k)
	}
}

func TestDiscretizerBins(t *testing.T) {
	d := NewDiscretizer([]float64{10, 20})
	if d.Bins() != 3 {
		t.Fatalf("bins = %d, want 3", d.Bins())
	}
	cases := []struct {
		v    float64
		want int
	}{{5, 0}, {10, 1}, {15, 1}, {20, 2}, {25, 2}, {-100, 0}}
	for _, c := range cases {
		if got := d.Bin(c.v); got != c.want {
			t.Errorf("Bin(%v) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestDiscretizerBoundarySemantics(t *testing.T) {
	// Table I semantics: small(<30) medium(<50): a value of exactly 30
	// belongs to the upper bin.
	d := NewDiscretizer([]float64{30, 50, 90})
	if d.Bin(29) != 0 || d.Bin(30) != 1 || d.Bin(49) != 1 || d.Bin(50) != 2 || d.Bin(90) != 3 {
		t.Error("boundary values land in the wrong bin")
	}
}

func TestDiscretizerDedupSort(t *testing.T) {
	d := NewDiscretizer([]float64{20, 10, 20, 10})
	if d.Bins() != 3 {
		t.Errorf("bins after dedup = %d, want 3", d.Bins())
	}
	cuts := d.Cuts()
	if !sort.Float64sAreSorted(cuts) {
		t.Errorf("cuts not sorted: %v", cuts)
	}
}

func TestDiscretizerEmpty(t *testing.T) {
	d := NewDiscretizer(nil)
	if d.Bins() != 1 {
		t.Errorf("empty discretizer bins = %d, want 1", d.Bins())
	}
	if d.Bin(123) != 0 {
		t.Error("single-bin discretizer must map everything to 0")
	}
}

func TestFitDiscretizer(t *testing.T) {
	var samples []float64
	for i := 0; i < 20; i++ {
		samples = append(samples, float64(i%5))     // cluster near 0-4
		samples = append(samples, 100+float64(i%5)) // cluster near 100-104
	}
	d, err := FitDiscretizer(samples, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if d.Bins() != 2 {
		t.Fatalf("fitted bins = %d, want 2", d.Bins())
	}
	if d.Bin(2) != 0 || d.Bin(102) != 1 {
		t.Error("fitted cut separates clusters incorrectly")
	}
	cut := d.Cuts()[0]
	if cut <= 4 || cut >= 100 {
		t.Errorf("cut %v not in the gap", cut)
	}
}

func TestFitDiscretizerSingleCluster(t *testing.T) {
	d, err := FitDiscretizer([]float64{1, 1.1, 1.2, 1.3}, 0.5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if d.Bins() != 1 {
		t.Errorf("single-cluster fit bins = %d, want 1", d.Bins())
	}
}

func TestFitDiscretizerError(t *testing.T) {
	if _, err := FitDiscretizer([]float64{1}, 0, 1); err == nil {
		t.Error("invalid eps should propagate")
	}
}

func TestDiscretizerMonotoneProperty(t *testing.T) {
	d := NewDiscretizer([]float64{-5, 0, 5, 50})
	f := func(a, b float64) bool {
		if a > b {
			a, b = b, a
		}
		return d.Bin(a) <= d.Bin(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDiscretizerBinRangeProperty(t *testing.T) {
	d := NewDiscretizer([]float64{1, 2, 3})
	f := func(v float64) bool {
		b := d.Bin(v)
		return b >= 0 && b < d.Bins()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
