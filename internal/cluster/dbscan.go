// Package cluster implements the DBSCAN density-based clustering algorithm.
//
// AutoScale (Table I of the paper) converts continuous state features — layer
// counts, MAC counts, co-runner CPU/memory utilization, RSSI — into discrete
// values for the Q-table by clustering observed feature samples with DBSCAN
// and cutting bins at the gaps between clusters. This package provides both
// the general n-dimensional algorithm and the 1-D Discretizer built on it.
package cluster

import (
	"errors"
	"math"
	"sort"
)

// Noise is the label assigned to points that belong to no cluster.
const Noise = -1

// Point is an n-dimensional sample.
type Point []float64

func dist(a, b Point) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// DBSCAN clusters pts with radius eps and density threshold minPts. It
// returns one label per input point: 0..k-1 for cluster membership, Noise for
// outliers, plus the number of clusters found. All points must share the same
// dimensionality.
func DBSCAN(pts []Point, eps float64, minPts int) ([]int, int, error) {
	if eps <= 0 {
		return nil, 0, errors.New("cluster: eps must be positive")
	}
	if minPts < 1 {
		return nil, 0, errors.New("cluster: minPts must be >= 1")
	}
	if len(pts) == 0 {
		return nil, 0, nil
	}
	dim := len(pts[0])
	for _, p := range pts {
		if len(p) != dim {
			return nil, 0, errors.New("cluster: points have mixed dimensionality")
		}
	}

	const unvisited = -2
	labels := make([]int, len(pts))
	for i := range labels {
		labels[i] = unvisited
	}

	neighbors := func(i int) []int {
		var out []int
		for j := range pts {
			if dist(pts[i], pts[j]) <= eps {
				out = append(out, j)
			}
		}
		return out
	}

	cluster := 0
	for i := range pts {
		if labels[i] != unvisited {
			continue
		}
		nb := neighbors(i)
		if len(nb) < minPts {
			labels[i] = Noise
			continue
		}
		labels[i] = cluster
		// Expand the cluster over the density-reachable set.
		queue := append([]int(nil), nb...)
		for qi := 0; qi < len(queue); qi++ {
			j := queue[qi]
			if labels[j] == Noise {
				labels[j] = cluster // border point
			}
			if labels[j] != unvisited {
				continue
			}
			labels[j] = cluster
			jnb := neighbors(j)
			if len(jnb) >= minPts {
				queue = append(queue, jnb...)
			}
		}
		cluster++
	}
	return labels, cluster, nil
}

// Discretizer maps a continuous scalar feature onto a small set of discrete
// bins. Bins are defined by sorted cut points: value v falls in bin i where
// cuts[i-1] <= v < cuts[i] (bin 0 is everything below cuts[0]).
type Discretizer struct {
	cuts []float64
}

// NewDiscretizer builds a Discretizer directly from explicit cut points,
// which are sorted and deduplicated. An empty cut list yields a single bin.
func NewDiscretizer(cuts []float64) *Discretizer {
	c := append([]float64(nil), cuts...)
	sort.Float64s(c)
	dedup := c[:0]
	for i, v := range c {
		if i == 0 || v != dedup[len(dedup)-1] {
			dedup = append(dedup, v)
		}
	}
	return &Discretizer{cuts: dedup}
}

// FitDiscretizer runs 1-D DBSCAN over the samples and places one cut point at
// the midpoint of every gap between adjacent clusters. Noise points are
// attached to the nearest cluster so every gap is between real densities. If
// fewer than two clusters emerge, the resulting Discretizer has one bin.
func FitDiscretizer(samples []float64, eps float64, minPts int) (*Discretizer, error) {
	pts := make([]Point, len(samples))
	for i, s := range samples {
		pts[i] = Point{s}
	}
	labels, k, err := DBSCAN(pts, eps, minPts)
	if err != nil {
		return nil, err
	}
	if k < 2 {
		return &Discretizer{}, nil
	}
	// Per-cluster [min,max] extents.
	lo := make([]float64, k)
	hi := make([]float64, k)
	seen := make([]bool, k)
	for i, l := range labels {
		if l == Noise {
			continue
		}
		v := samples[i]
		if !seen[l] {
			lo[l], hi[l], seen[l] = v, v, true
			continue
		}
		if v < lo[l] {
			lo[l] = v
		}
		if v > hi[l] {
			hi[l] = v
		}
	}
	type extent struct{ lo, hi float64 }
	exts := make([]extent, 0, k)
	for c := 0; c < k; c++ {
		if seen[c] {
			exts = append(exts, extent{lo[c], hi[c]})
		}
	}
	sort.Slice(exts, func(i, j int) bool { return exts[i].lo < exts[j].lo })
	cuts := make([]float64, 0, len(exts)-1)
	for i := 1; i < len(exts); i++ {
		cuts = append(cuts, (exts[i-1].hi+exts[i].lo)/2)
	}
	return NewDiscretizer(cuts), nil
}

// Bin returns the bin index for v (0..Bins()-1).
func (d *Discretizer) Bin(v float64) int {
	// cuts is sorted; find the first cut strictly greater than v.
	return sort.SearchFloat64s(d.cuts, math.Nextafter(v, math.Inf(1)))
}

// Bins returns the number of bins.
func (d *Discretizer) Bins() int { return len(d.cuts) + 1 }

// Cuts returns a copy of the cut points.
func (d *Discretizer) Cuts() []float64 { return append([]float64(nil), d.cuts...) }
