package autoscale

import (
	"autoscale/internal/serve"
	"autoscale/internal/serve/metrics"
)

// Fleet serving: a concurrent gateway that accepts inference requests
// through bounded per-device queues and serves them from warm-started
// engines, with admission control, deadline-aware dispatch, failover and
// runtime metrics (see internal/serve for full documentation).
type (
	// Gateway serves inference requests against a fleet of engines.
	Gateway = serve.Gateway
	// GatewayConfig tunes queue depth, shed policy, failover and the policy
	// checkpoint store (warm-start at boot, flush at shutdown, background
	// sync).
	GatewayConfig = serve.Config
	// GatewayBackend pairs a device name with its engine.
	GatewayBackend = serve.Backend
	// Request is one inference to serve (model, conditions, deadline,
	// optional device pin).
	Request = serve.Request
	// Response is the terminal outcome delivered per request.
	Response = serve.Response
	// RequestStatus classifies a response (served, shed, expired, failed).
	RequestStatus = serve.Status
	// ShedPolicy selects the admission-control victim on a full queue.
	ShedPolicy = serve.ShedPolicy
	// GatewayMetrics is a point-in-time copy of the gateway's counters and
	// histograms.
	GatewayMetrics = metrics.Snapshot
	// GatewayAdmin is the gateway's opt-in observability HTTP server:
	// /metrics (Prometheus text), /snapshot.json, /healthz, /breakers and
	// net/http/pprof.
	GatewayAdmin = serve.Admin
	// ResilienceConfig tunes the gateway's fault-handling path: per-remote
	// circuit breakers with half-open recovery probes, deadline-budgeted
	// retries with exponential backoff, and optional hedged offloads.
	ResilienceConfig = serve.ResilienceConfig
)

// Request outcomes.
const (
	StatusServed  = serve.StatusServed
	StatusShed    = serve.StatusShed
	StatusExpired = serve.StatusExpired
	StatusFailed  = serve.StatusFailed
)

// Shed policies.
const (
	ShedNewest = serve.ShedNewest
	ShedOldest = serve.ShedOldest
)

// Gateway sentinel errors.
var (
	ErrGatewayClosed   = serve.ErrClosed
	ErrQueueFull       = serve.ErrQueueFull
	ErrDeadlineExpired = serve.ErrDeadlineExpired
)

// NewGateway starts a serving gateway over the given backends (one worker
// goroutine per device). Provision the engines however you like —
// Fleet.ProvisionGateway warm-starts a whole fleet in one call.
func NewGateway(backends []GatewayBackend, cfg GatewayConfig) (*Gateway, error) {
	return serve.New(backends, cfg)
}

// ServeGatewayAdmin binds the gateway's admin/observability endpoint on addr
// (e.g. ":9090") and serves it in the background until Close.
func ServeGatewayAdmin(g *Gateway, addr string) (*GatewayAdmin, error) {
	return serve.ServeAdmin(g, addr)
}

// GatewayPromText renders a metrics snapshot and per-device learning health
// in the Prometheus text exposition format.
func GatewayPromText(s GatewayMetrics, health map[string]EngineHealth) []byte {
	return serve.PromText(s, health)
}
