package autoscale

import (
	"context"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"
)

// edgeBackends builds n same-configuration workers ("edge-0" ...), each its
// own engine on a Mi8Pro world so their tables are compatible (one config
// hash) but their experience differs (different seeds).
func edgeBackends(t testing.TB, n int, seed int64) []GatewayBackend {
	t.Helper()
	backends := make([]GatewayBackend, 0, n)
	for i := 0; i < n; i++ {
		world, err := NewWorld(Mi8Pro, seed+int64(i))
		if err != nil {
			t.Fatal(err)
		}
		engine, err := NewEngine(world, DefaultEngineConfig())
		if err != nil {
			t.Fatal(err)
		}
		backends = append(backends, GatewayBackend{Device: deviceName(i), Engine: engine})
	}
	return backends
}

func deviceName(i int) string { return "edge-" + string(rune('0'+i)) }

func floodGateway(t testing.TB, gw *Gateway, n int) {
	t.Helper()
	m, err := Model("MobileNet v3")
	if err != nil {
		t.Fatal(err)
	}
	env, err := NewEnvironment(EnvS1, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		req := Request{Model: m, Conditions: env.Sample(), Device: deviceName(i % 3)}
		if _, err := gw.Do(req); err != nil {
			t.Fatal(err)
		}
	}
}

func shutdown(t testing.TB, gw *Gateway) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := gw.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestPolicyPlaneEndToEnd is the acceptance path for the policy plane: a
// three-device fleet learns under load, a sync pass checkpoints every worker
// and publishes a merged fleet policy, a restarted fleet resumes from the
// latest generations, and a corrupted latest checkpoint falls back to the
// previous one without taking the gateway down.
func TestPolicyPlaneEndToEnd(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenPolicyStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}

	// Generation 1: learn under load, sync, shut down (which flushes gen 2).
	gw, err := NewGateway(edgeBackends(t, 3, 1), GatewayConfig{Checkpoints: store})
	if err != nil {
		t.Fatal(err)
	}
	floodGateway(t, gw, 60)
	rep, err := gw.SyncPolicies()
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	sort.Strings(rep.Checkpointed)
	if len(rep.Checkpointed) != 3 {
		t.Fatalf("sync checkpointed %v, want all three workers", rep.Checkpointed)
	}
	if rep.MergedGroups != 1 {
		t.Fatalf("merged groups = %d, want 1 (same config hash)", rep.MergedGroups)
	}
	shutdown(t, gw)

	devices, err := store.Devices()
	if err != nil {
		t.Fatal(err)
	}
	// Three workers plus the merged _fleet-<hash> policy.
	if len(devices) != 4 {
		t.Fatalf("store devices: %v", devices)
	}
	for i := 0; i < 3; i++ {
		if g := store.LatestGeneration(deviceName(i)); g != 2 {
			t.Fatalf("%s at generation %d after sync+shutdown, want 2", deviceName(i), g)
		}
	}

	// Restart: every worker resumes from its own latest checkpoint.
	gw, err = NewGateway(edgeBackends(t, 3, 100), GatewayConfig{Checkpoints: store})
	if err != nil {
		t.Fatal(err)
	}
	warm := gw.WarmStarts()
	if len(warm) != 3 {
		t.Fatalf("warm starts: %v, want all three workers", warm)
	}
	for dev, gen := range warm {
		if gen != 2 {
			t.Fatalf("%s warm-started from generation %d, want 2", dev, gen)
		}
	}
	floodGateway(t, gw, 30)
	shutdown(t, gw)
	if g := store.LatestGeneration(deviceName(0)); g != 3 {
		t.Fatalf("restarted fleet flushed generation %d, want 3", g)
	}

	// Corrupt edge-0's newest checkpoint on disk. The next boot must fall
	// back to the previous valid generation — no crash, no garbage table.
	files, err := filepath.Glob(filepath.Join(dir, "edge-0", "gen-*.ckpt"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no checkpoint files on disk: %v %v", files, err)
	}
	sort.Strings(files)
	newest := files[len(files)-1]
	if err := os.WriteFile(newest, []byte("torn write: not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}

	gw, err = NewGateway(edgeBackends(t, 3, 200), GatewayConfig{Checkpoints: store})
	if err != nil {
		t.Fatal(err)
	}
	warm = gw.WarmStarts()
	if warm["edge-0"] != 2 {
		t.Fatalf("after corrupting gen 3, edge-0 warm-started from %d, want 2", warm["edge-0"])
	}
	if warm["edge-1"] != 3 {
		t.Fatalf("undamaged edge-1 warm-started from %d, want 3", warm["edge-1"])
	}
	floodGateway(t, gw, 30)
	shutdown(t, gw)
	if _, err := os.Stat(newest + ".corrupt"); err != nil {
		t.Errorf("corrupt checkpoint not quarantined: %v", err)
	}
}

// TestFleetProvisionFromStore: ProvisionFromStore prefers the device's own
// checkpoint, then the merged fleet policy, then the donor.
func TestFleetProvisionFromStore(t *testing.T) {
	store, err := OpenPolicyStore(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	fleet, err := NewFleet(Mi8Pro, DefaultEngineConfig(), 2, 1)
	if err != nil {
		t.Fatal(err)
	}

	// Empty store: falls back to donor transfer (engine has donor's rows).
	engine, err := fleet.ProvisionFromStore(Mi8Pro, DefaultEngineConfig(), store, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(engine.Agent().States()) == 0 {
		t.Fatal("donor fallback left a cold engine")
	}

	// Persist the donor's own experience as this device's checkpoint; a
	// re-provisioned engine must resume from it (same table, same visits).
	ck, err := NewPolicyCheckpoint(fleet.Donor(), Mi8Pro)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := store.SaveNext(ck)
	if err != nil {
		t.Fatal(err)
	}
	if gen != 1 {
		t.Fatalf("generation = %d, want 1", gen)
	}
	resumed, err := fleet.ProvisionFromStore(Mi8Pro, DefaultEngineConfig(), store, 8)
	if err != nil {
		t.Fatal(err)
	}
	donorVisits := fleet.Donor().Agent().TotalVisits()
	if got := resumed.Agent().TotalVisits(); got != donorVisits {
		t.Fatalf("resumed engine has %d visits, checkpoint carried %d", got, donorVisits)
	}

	// nil sink degrades to plain Provision.
	if _, err := fleet.ProvisionFromStore(Mi8Pro, DefaultEngineConfig(), nil, 9); err != nil {
		t.Fatal(err)
	}
}
