package autoscale

import (
	"io"

	"autoscale/internal/session"
	"autoscale/internal/trace"
)

// Session simulation: drive a policy with realistic request streams over
// simulated wall-clock time, with battery accounting.
type (
	// SessionConfig describes one usage session (model, environment,
	// arrival process, duration).
	SessionConfig = session.Config
	// SessionStats summarizes a session run.
	SessionStats = session.Stats
	// Arrival generates inference request gaps.
	Arrival = session.Arrival
	// Periodic issues requests at a fixed cadence (video frames).
	Periodic = session.Periodic
	// Poisson issues requests with exponential gaps (user interactions).
	Poisson = session.Poisson
	// Bursty alternates request bursts with long idle gaps.
	Bursty = session.Bursty
)

// RunSession replays a usage session against a policy, optionally draining
// a battery (nil skips battery accounting). The session ends at the
// configured duration or when the battery empties.
func RunSession(p Policy, cfg SessionConfig, b *Battery) (SessionStats, error) {
	return session.Run(p, cfg, b)
}

// Decision tracing: an auditable JSON-Lines log of every scheduling
// decision.
type (
	// TraceRecord is one scheduled inference in the log.
	TraceRecord = trace.Record
	// TraceWriter appends records as JSON Lines.
	TraceWriter = trace.Writer
	// TraceSummary aggregates a trace.
	TraceSummary = trace.Summary
)

// NewTraceWriter wraps an io.Writer for decision logging.
func NewTraceWriter(w io.Writer) *TraceWriter { return trace.NewWriter(w) }

// ReadTrace decodes a JSON-Lines decision trace.
func ReadTrace(r io.Reader) ([]TraceRecord, error) { return trace.ReadAll(r) }

// SummarizeTrace aggregates a decision trace.
func SummarizeTrace(records []TraceRecord) TraceSummary { return trace.Summarize(records) }

// TracedPolicy adapts an engine to the Policy interface while logging every
// decision to the trace writer.
func TracedPolicy(e *Engine, w *TraceWriter) Policy {
	return &trace.RecordingPolicy{Engine: e, Out: w}
}
