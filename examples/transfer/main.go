// Learning transfer (Section VI-C of the paper): a Q-table trained on the
// Mi8Pro is transferred to the Moto X Force, whose DVFS ladders and engine
// set differ. The example measures how many inference runs each engine needs
// before its best-Q value stabilizes — the Fig 14 experiment in miniature.
package main

import (
	"fmt"
	"log"

	"autoscale"
)

func main() {
	fmt.Println("training the donor engine on the Mi8Pro...")
	donorWorld, err := autoscale.NewWorld(autoscale.Mi8Pro, 11)
	if err != nil {
		log.Fatal(err)
	}
	donor, err := autoscale.NewTrainedEngine(donorWorld, autoscale.DefaultEngineConfig(), 40, 11)
	if err != nil {
		log.Fatal(err)
	}

	model, err := autoscale.Model("Inception v1")
	if err != nil {
		log.Fatal(err)
	}
	env, err := autoscale.NewEnvironment(autoscale.EnvS1, 11)
	if err != nil {
		log.Fatal(err)
	}

	for _, transfer := range []bool{false, true} {
		world, err := autoscale.NewWorld(autoscale.MotoXForce, 12)
		if err != nil {
			log.Fatal(err)
		}
		engine, err := autoscale.NewEngine(world, autoscale.DefaultEngineConfig())
		if err != nil {
			log.Fatal(err)
		}
		mode := "from scratch"
		if transfer {
			if err := engine.TransferFrom(donor); err != nil {
				log.Fatal(err)
			}
			mode = "with transfer"
		}
		runs := converge(engine, model, env)
		fmt.Printf("Moto X Force %-14s converged after ~%d runs\n", mode, runs)
	}
}

// converge runs inferences until the state's best Q value stays within 5% of
// its window mean for 12 consecutive runs.
func converge(engine *autoscale.Engine, model *autoscale.DNNModel, env *autoscale.Environment) int {
	const window, tol, maxRuns = 12, 0.05, 400
	var buf []float64
	for run := 1; run <= maxRuns; run++ {
		d, err := engine.RunInference(model, env.Sample())
		if err != nil {
			log.Fatal(err)
		}
		best, err := engine.Agent().BestAction(d.State, engine.Actions.Mask(model))
		if err != nil {
			log.Fatal(err)
		}
		buf = append(buf, engine.Agent().Q(d.State, best))
		if len(buf) > window {
			buf = buf[len(buf)-window:]
		}
		if len(buf) == window && stable(buf, tol) {
			return run
		}
	}
	return maxRuns
}

func stable(xs []float64, tol float64) bool {
	var mean float64
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	scale := mean
	if scale < 0 {
		scale = -scale
	}
	if scale < 1e-9 {
		scale = 1e-9
	}
	for _, x := range xs {
		d := x - mean
		if d < 0 {
			d = -d
		}
		if d > tol*scale {
			return false
		}
	}
	return true
}
