// Quickstart: build the simulated edge-cloud world around a phone, create an
// AutoScale engine, and watch it learn where to run MobileNet v3 inference
// while a web browser co-runs (environment D2 of the paper).
package main

import (
	"fmt"
	"log"

	"autoscale"
)

func main() {
	world, err := autoscale.NewWorld(autoscale.Mi8Pro, 1)
	if err != nil {
		log.Fatal(err)
	}
	engine, err := autoscale.NewEngine(world, autoscale.DefaultEngineConfig())
	if err != nil {
		log.Fatal(err)
	}
	env, err := autoscale.NewEnvironment(autoscale.EnvD2, 1)
	if err != nil {
		log.Fatal(err)
	}
	model, err := autoscale.Model("MobileNet v3")
	if err != nil {
		log.Fatal(err)
	}

	qos := autoscale.QoSFor(model, autoscale.NonStreaming)
	fmt.Printf("learning to schedule %s (QoS %.0f ms) on %s with a browser co-running\n\n",
		model.Name, qos*1000, world.Device.Name)

	var energy10 float64
	for i := 1; i <= 200; i++ {
		d, err := engine.RunInference(model, env.Sample())
		if err != nil {
			log.Fatal(err)
		}
		energy10 += d.Measurement.EnergyJ
		if i%10 == 0 {
			fmt.Printf("run %3d: last target %-22s avg energy %6.1f mJ (last 10)\n",
				i, d.Target, energy10/10*1e3)
			energy10 = 0
		}
	}

	// After learning, query the greedy decision for a calm moment and a
	// heavily loaded one.
	calm := autoscale.Conditions{RSSIWLAN: -55, RSSIP2P: -55}
	tgt, err := engine.Predict(model, calm)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncalm conditions      -> %s\n", tgt)
	loaded := calm
	loaded.Load.CPUUtil, loaded.Load.MemUtil = 0.85, 0.2
	tgt, err = engine.Predict(model, loaded)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CPU-hog interference -> %s\n", tgt)
}
