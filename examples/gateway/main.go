// Fleet serving: provision warm-started engines for two devices, put the
// serving gateway in front of them, and drive it with a Poisson stream of
// user interactions (the session layer's arrival model) under a per-request
// deadline — then read the gateway's metrics snapshot: throughput, shed and
// expired counts, latency/energy distributions and the decision breakdown.
package main

import (
	"context"
	"fmt"
	"log"
	"sort"
	"time"

	"autoscale"
)

func main() {
	cfg := autoscale.DefaultEngineConfig()

	fmt.Println("training the donor on the Mi8Pro (reference device)...")
	fleet, err := autoscale.NewFleet(autoscale.Mi8Pro, cfg, 40, 7)
	if err != nil {
		log.Fatal(err)
	}

	// One warm-started engine per fleet device, behind one gateway with
	// small queues and failover to the local fallback on QoS misses.
	gw, err := fleet.ProvisionGateway(
		[]string{autoscale.GalaxyS10e, autoscale.MotoXForce},
		cfg,
		autoscale.GatewayConfig{QueueDepth: 8, Shed: autoscale.ShedOldest, FailoverLocal: true},
		11,
	)
	if err != nil {
		log.Fatal(err)
	}

	model, err := autoscale.Model("MobileNet v3")
	if err != nil {
		log.Fatal(err)
	}
	env, err := autoscale.NewEnvironment(autoscale.EnvD2, 11)
	if err != nil {
		log.Fatal(err)
	}

	// A Poisson arrival stream, as a user-interaction session would produce
	// — compressed so the example finishes quickly: the session layer's
	// gaps, divided by 1000, pace real submissions.
	arrival := autoscale.Poisson{RatePerS: 20}
	rng := autoscale.NewExecContext(11).Stream("example.arrival")
	const requests = 600
	fmt.Printf("submitting %d Poisson-arriving requests...\n", requests)
	var chans []<-chan autoscale.Response
	for i := 0; i < requests; i++ {
		time.Sleep(time.Duration(arrival.NextGapS(rng) / 1000 * float64(time.Second)))
		ch, err := gw.Submit(autoscale.Request{
			Model:      model,
			Conditions: env.Sample(),
			Deadline:   time.Now().Add(200 * time.Millisecond),
		})
		if err != nil {
			log.Fatal(err)
		}
		chans = append(chans, ch)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := gw.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}

	byStatus := map[autoscale.RequestStatus]int{}
	for _, ch := range chans {
		r := <-ch
		byStatus[r.Status]++
	}
	fmt.Printf("\noutcomes: %d served, %d shed, %d expired, %d failed\n",
		byStatus[autoscale.StatusServed], byStatus[autoscale.StatusShed],
		byStatus[autoscale.StatusExpired], byStatus[autoscale.StatusFailed])

	s := gw.Snapshot()
	fmt.Printf("latency: mean %.1f ms   energy: mean %.1f mJ (%.1f J total)\n",
		s.Latency.Mean()*1e3, s.Energy.Mean()*1e3, s.Energy.Sum)
	fmt.Printf("retries %d, outages %d, QoS misses %d, queue high-water %d\n",
		s.Retried, s.Outages, s.QoSViolations, s.QueueMaxDepth)

	var locs []string
	for loc := range s.ByTarget {
		locs = append(locs, loc)
	}
	sort.Strings(locs)
	fmt.Println("decision breakdown:")
	for _, loc := range locs {
		fmt.Printf("  %-10s %5.1f%%\n", loc, 100*float64(s.ByTarget[loc])/float64(s.Served))
	}
	for _, dev := range gw.Devices() {
		fmt.Printf("  %-12s served %d\n", dev, s.ByDevice[dev])
	}
}
