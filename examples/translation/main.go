// Translation under varying Wi-Fi: MobileBERT is far too heavy for the
// phone, so AutoScale must learn to offload — but when the Wi-Fi signal
// swings (environment D3), blind cloud offloading wastes radio energy. The
// example contrasts AutoScale with the always-cloud baseline as the signal
// drifts, the scenario behind Figs 6 and 11.
package main

import (
	"fmt"
	"log"

	"autoscale"
)

func main() {
	world, err := autoscale.NewWorld(autoscale.MotoXForce, 3)
	if err != nil {
		log.Fatal(err)
	}
	model, err := autoscale.Model("MobileBERT")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("training AutoScale on the mid-end phone...")
	engine, err := autoscale.NewTrainedEngine(world, autoscale.DefaultEngineConfig(), 40, 3)
	if err != nil {
		log.Fatal(err)
	}
	if err := engine.Agent().SetEpsilon(0); err != nil {
		log.Fatal(err)
	}

	qos := autoscale.QoSFor(model, autoscale.NonStreaming)
	asPolicy := autoscale.AsPolicy(engine)
	cloud := autoscale.Baselines(world, autoscale.NonStreaming)[2] // Cloud

	fmt.Printf("\ntranslating under a drifting Wi-Fi signal (QoS %.0f ms):\n\n", qos*1000)
	fmt.Printf("%-22s %-12s %10s %10s %8s\n", "policy", "signal", "avg mJ", "avg ms", "QoS-X")
	for _, scenario := range []struct {
		label string
		rssi  float64
	}{
		{"strong (-55 dBm)", -55},
		{"weak (-88 dBm)", -88},
	} {
		for _, p := range []autoscale.Policy{asPolicy, cloud} {
			var energy, latency float64
			var viol int
			const n = 200
			for i := 0; i < n; i++ {
				c := autoscale.Conditions{RSSIWLAN: scenario.rssi, RSSIP2P: -55}
				meas, err := p.Run(model, c)
				if err != nil {
					log.Fatal(err)
				}
				energy += meas.EnergyJ
				latency += meas.LatencyS
				if meas.LatencyS > qos {
					viol++
				}
			}
			fmt.Printf("%-22s %-12s %10.1f %10.1f %7.1f%%\n", p.Name(), scenario.label,
				energy/n*1e3, latency/n*1e3, 100*float64(viol)/n)
		}
	}
	fmt.Println("\n(MobileBERT's tiny payload keeps the cloud viable even at weak signal;")
	fmt.Println(" for camera workloads the same swing forces AutoScale back on-device.)")
}
