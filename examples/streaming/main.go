// Streaming object detection: an SSD MobileNet model must hold a 30 FPS
// frame budget (33.3 ms) while the co-running app mix changes (environment
// D4). The example trains AutoScale offline, then streams 600 frames and
// compares its energy and QoS violations with the Edge (CPU FP32) baseline
// and the Opt oracle — the per-frame view of Fig 10.
package main

import (
	"fmt"
	"log"

	"autoscale"
)

func main() {
	world, err := autoscale.NewWorld(autoscale.GalaxyS10e, 7)
	if err != nil {
		log.Fatal(err)
	}
	model, err := autoscale.Model("SSD MobileNet v2")
	if err != nil {
		log.Fatal(err)
	}
	cfg := autoscale.DefaultEngineConfig()
	cfg.Intensity = autoscale.Streaming

	fmt.Println("training AutoScale for the streaming scenario...")
	engine, err := autoscale.NewTrainedEngine(world, cfg, 40, 7)
	if err != nil {
		log.Fatal(err)
	}
	if err := engine.Agent().SetEpsilon(0); err != nil {
		log.Fatal(err)
	}

	policies := []autoscale.Policy{
		autoscale.AsPolicy(engine),
		autoscale.Baselines(world, autoscale.Streaming)[0], // Edge (CPU FP32)
		autoscale.Opt(world, autoscale.Streaming),
	}
	qos := autoscale.QoSFor(model, autoscale.Streaming)
	const frames = 600

	fmt.Printf("\nstreaming %d frames of %s (budget %.1f ms):\n\n", frames, model.Name, qos*1000)
	fmt.Printf("%-16s %12s %12s %10s\n", "policy", "avg mJ/frame", "avg ms", "dropped")
	for _, p := range policies {
		env, err := autoscale.NewEnvironment(autoscale.EnvD4, 7)
		if err != nil {
			log.Fatal(err)
		}
		var energy, latency float64
		var dropped int
		for f := 0; f < frames; f++ {
			meas, err := p.Run(model, env.Sample())
			if err != nil {
				log.Fatal(err)
			}
			energy += meas.EnergyJ
			latency += meas.LatencyS
			if meas.LatencyS > qos {
				dropped++
			}
		}
		fmt.Printf("%-16s %12.1f %12.1f %9.1f%%\n", p.Name(),
			energy/frames*1e3, latency/frames*1e3, 100*float64(dropped)/frames)
	}
}
