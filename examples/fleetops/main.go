// Fleet operations: train one donor Q-table on a reference device, provision
// warm-started engines across a heterogeneous fleet (the paper's learning
// transfer, Section VI-C), serve traffic with decision tracing on, and audit
// the resulting logs — the workflow an operator of many AutoScale-scheduled
// devices would run.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"

	"autoscale"
)

func main() {
	cfg := autoscale.DefaultEngineConfig()

	fmt.Println("training the donor on the Mi8Pro (reference device)...")
	fleet, err := autoscale.NewFleet(autoscale.Mi8Pro, cfg, 60, 31)
	if err != nil {
		log.Fatal(err)
	}

	model, err := autoscale.Model("Inception v1")
	if err != nil {
		log.Fatal(err)
	}

	dir, err := os.MkdirTemp("", "autoscale-fleet")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	for _, device := range autoscale.DeviceNames()[1:] { // the non-donor phones
		engine, err := fleet.Provision(device, cfg, 32)
		if err != nil {
			log.Fatal(err)
		}

		path := filepath.Join(dir, device+".jsonl")
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		writer := autoscale.NewTraceWriter(f)
		policy := autoscale.TracedPolicy(engine, writer)

		env, err := autoscale.NewEnvironment(autoscale.EnvD2, 32)
		if err != nil {
			log.Fatal(err)
		}
		for i := 0; i < 300; i++ {
			if _, err := policy.Run(model, env.Sample()); err != nil {
				log.Fatal(err)
			}
		}
		if err := writer.Flush(); err != nil {
			log.Fatal(err)
		}
		f.Close()

		// Audit the log offline.
		in, err := os.Open(path)
		if err != nil {
			log.Fatal(err)
		}
		records, err := autoscale.ReadTrace(in)
		in.Close()
		if err != nil {
			log.Fatal(err)
		}
		sum := autoscale.SummarizeTrace(records)
		fmt.Printf("\n%s: %d decisions, %.1f J total, %.1f ms mean latency, %.1f%% QoS misses\n",
			device, sum.Records, sum.TotalEnergyJ, sum.MeanLatencyS*1e3, sum.ViolationRatio*100)
		var locs []string
		for loc := range sum.ByLocation {
			locs = append(locs, loc)
		}
		sort.Strings(locs)
		for _, loc := range locs {
			fmt.Printf("  %-10s %5.1f%%\n", loc, sum.ByLocation[loc]*100)
		}
	}
}
