// A day in the life of a battery: four usage sessions — a morning photo
// burst, a commute with streaming object detection, an afternoon of
// translation while browsing, an evening video session — replayed under
// three schedulers. The example translates the per-inference joules of the
// simulator into battery drain (3000 mAh at 3.85 V, roughly the paper's
// mid-range phones) and shows why the paper optimizes energy at all.
package main

import (
	"fmt"
	"log"

	"autoscale"
)

type session struct {
	label     string
	model     string
	env       string
	intensity autoscale.Intensity
	requests  int
}

var day = []session{
	{"morning photos", "Inception v1", autoscale.EnvD1, autoscale.NonStreaming, 150},
	{"commute detection", "SSD MobileNet v2", autoscale.EnvD3, autoscale.Streaming, 900},
	{"afternoon translate", "MobileBERT", autoscale.EnvD2, autoscale.NonStreaming, 120},
	{"evening video", "MobileNet v1", autoscale.EnvD4, autoscale.Streaming, 900},
}

func main() {
	world, err := autoscale.NewWorld(autoscale.GalaxyS10e, 21)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("training AutoScale...")
	cfg := autoscale.DefaultEngineConfig()
	engine, err := autoscale.NewTrainedEngine(world, cfg, 40, 21)
	if err != nil {
		log.Fatal(err)
	}
	if err := engine.Agent().SetEpsilon(0); err != nil {
		log.Fatal(err)
	}

	policies := []autoscale.Policy{
		autoscale.AsPolicy(engine),
		autoscale.Baselines(world, autoscale.NonStreaming)[0], // Edge (CPU FP32)
		autoscale.Baselines(world, autoscale.NonStreaming)[2], // Cloud
	}

	fmt.Printf("\n%-16s", "session")
	for _, p := range policies {
		fmt.Printf(" %16s", p.Name())
	}
	fmt.Println()

	totals := make([]float64, len(policies))
	for _, s := range day {
		model, err := autoscale.Model(s.model)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s", s.label)
		for i, p := range policies {
			env, err := autoscale.NewEnvironment(s.env, 21)
			if err != nil {
				log.Fatal(err)
			}
			var joules float64
			for r := 0; r < s.requests; r++ {
				meas, err := p.Run(model, env.Sample())
				if err != nil {
					log.Fatalf("%s: %v", p.Name(), err)
				}
				joules += meas.EnergyJ
			}
			totals[i] += joules
			fmt.Printf(" %13.1f J", joules)
		}
		fmt.Println()
	}

	fmt.Printf("\n%-16s", "TOTAL")
	for _, j := range totals {
		fmt.Printf(" %13.1f J", j)
	}
	fmt.Println()

	// Translate into battery terms.
	fmt.Println()
	for i, p := range policies {
		b, err := autoscale.NewBattery(3000, 3.85)
		if err != nil {
			log.Fatal(err)
		}
		_ = b.Drain(totals[i])
		daysOfInference := 1e9
		if totals[i] > 0 {
			daysOfInference = b.CapacityJ() / totals[i]
		}
		fmt.Printf("%-16s leaves the phone at %4.1f%%  (~%.0f such days per charge)\n",
			p.Name(), b.SoC()*100, daysOfInference)
	}
}
