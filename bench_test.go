package autoscale

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (run `go test -bench=. -benchmem`). Each experiment bench
// reports its headline quantity via b.ReportMetric so the paper-vs-measured
// comparison in EXPERIMENTS.md can be reproduced from the bench output; the
// engine micro-benchmarks reproduce the Section VI-C overhead analysis
// (25.4 us per training step, 7.3 us per trained-table lookup, 0.4 MB
// table). Ablation benches cover the design choices called out in DESIGN.md.

import (
	"context"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"

	"autoscale/internal/core"
	"autoscale/internal/dnn"
	"autoscale/internal/exp"
	"autoscale/internal/rl"
	"autoscale/internal/sched"
	"autoscale/internal/sim"
	"autoscale/internal/soc"
)

// benchOpts keeps experiment benches affordable; the full-fidelity numbers
// in EXPERIMENTS.md come from cmd/autoscale-exp without -quick.
func benchOpts() exp.Options { return exp.Quick(42) }

func runExperiment(b *testing.B, id string) *exp.Table {
	b.Helper()
	var tab *exp.Table
	var err error
	for i := 0; i < b.N; i++ {
		tab, err = exp.Run(id, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	return tab
}

// cellFloat extracts a numeric cell from a table row identified by the
// values of leading columns.
func cellFloat(b *testing.B, tab *exp.Table, col int, match ...string) float64 {
	b.Helper()
	for _, row := range tab.Rows {
		ok := true
		for i, m := range match {
			if row[i] != m {
				ok = false
				break
			}
		}
		if ok {
			v, err := strconv.ParseFloat(row[col], 64)
			if err != nil {
				b.Fatalf("parse %q: %v", row[col], err)
			}
			return v
		}
	}
	b.Fatalf("row %v not found", match)
	return 0
}

func BenchmarkTableIStates(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := core.NewStateSpace()
		if s.Size() != 3072 {
			b.Fatal("state space drifted")
		}
	}
}

func BenchmarkFig2(b *testing.B)  { runExperiment(b, "fig2") }
func BenchmarkFig3(b *testing.B)  { runExperiment(b, "fig3") }
func BenchmarkFig4(b *testing.B)  { runExperiment(b, "fig4") }
func BenchmarkFig5(b *testing.B)  { runExperiment(b, "fig5") }
func BenchmarkFig6(b *testing.B)  { runExperiment(b, "fig6") }
func BenchmarkFig7(b *testing.B)  { runExperiment(b, "fig7") }
func BenchmarkFig10(b *testing.B) { runExperiment(b, "fig10") }
func BenchmarkFig11(b *testing.B) { runExperiment(b, "fig11") }
func BenchmarkFig12(b *testing.B) { runExperiment(b, "fig12") }
func BenchmarkFig13(b *testing.B) { runExperiment(b, "fig13") }

func BenchmarkFig9(b *testing.B) {
	tab := runExperiment(b, "fig9")
	// Report the headline quantity: AutoScale's PPW over Edge (CPU FP32),
	// averaged over the three devices (paper: 9.8x).
	var sum float64
	for _, dev := range []string{"Mi8Pro", "GalaxyS10e", "MotoXForce"} {
		sum += cellFloat(b, tab, 2, dev, "AutoScale")
	}
	b.ReportMetric(sum/3, "xEdgeCPU")
}

func BenchmarkFig14(b *testing.B) {
	tab := runExperiment(b, "fig14")
	// Report the from-scratch static convergence on the Mi8Pro
	// (paper: 40-50 runs).
	b.ReportMetric(cellFloat(b, tab, 3, "Mi8Pro", "scratch", "static"), "runs")
}

func BenchmarkAblationStates(b *testing.B) { runExperiment(b, "ablation") }

// --- Section VI-C overhead micro-benchmarks -------------------------------

// trainedBenchEngine builds a lightly trained engine for overhead benches
// (and the zero-alloc regression guard, hence testing.TB).
func trainedBenchEngine(b testing.TB) (*core.Engine, *dnn.Model, sim.Conditions) {
	b.Helper()
	w := sim.NewWorld(soc.Mi8Pro(), 1)
	e, err := core.NewEngine(w, core.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	m := dnn.MustByName("MobileNet v3")
	c := sim.Conditions{RSSIWLAN: -55, RSSIP2P: -55}
	for i := 0; i < 200; i++ {
		if _, err := e.RunInference(m, c); err != nil {
			b.Fatal(err)
		}
	}
	return e, m, c
}

// BenchmarkEngineTrainStep measures one full engine step — observe, select,
// execute (simulated), estimate, reward, update — the quantity the paper
// reports as 25.4 us of training overhead.
func BenchmarkEngineTrainStep(b *testing.B) {
	e, m, c := trainedBenchEngine(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.RunInference(m, c); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineLookup measures the exploitation path — observe and greedy
// Q-table lookup — the paper's 7.3 us trained-table overhead.
func BenchmarkEngineLookup(b *testing.B) {
	e, m, c := trainedBenchEngine(b)
	e.Agent().Freeze()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Predict(m, c); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStateKey measures the Table I discretization alone.
func BenchmarkStateKey(b *testing.B) {
	s := core.NewStateSpace()
	m := dnn.MustByName("Inception v3")
	c := sim.Conditions{RSSIWLAN: -72, RSSIP2P: -61}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Key(core.ObservationOf(m, c))
	}
}

// BenchmarkQTableUpdate measures the raw Q-learning update rule.
func BenchmarkQTableUpdate(b *testing.B) {
	ag, err := rl.NewAgent(rl.DefaultConfig(), 66)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ag.Update("0|1|0|1|0|0|1|1", i%66, -42.0, "0|1|0|1|0|0|1|1", nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWorldExecute measures one simulated inference execution.
func BenchmarkWorldExecute(b *testing.B) {
	w := sim.NewWorld(soc.Mi8Pro(), 1)
	m := dnn.MustByName("ResNet 50")
	t := sim.Target{Location: sim.Local, Kind: soc.DSP, Prec: dnn.INT8}
	c := sim.Conditions{RSSIWLAN: -55, RSSIP2P: -55}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Execute(m, t, c); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOptSearch measures the exhaustive oracle search over the ~66
// actions — what the Opt baseline pays per request.
func BenchmarkOptSearch(b *testing.B) {
	w := sim.NewWorld(soc.Mi8Pro(), 1)
	m := dnn.MustByName("Inception v1")
	c := sim.Conditions{RSSIWLAN: -55, RSSIP2P: -55}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := w.BestTarget(m, c, sim.QoSNonStreamingS, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation benches (design choices called out in DESIGN.md) ------------

// ablationEval trains an engine with the given config on two models and one
// environment and reports the energy ratio of its greedy decisions to Opt.
func ablationEval(b *testing.B, cfg core.Config) float64 {
	b.Helper()
	w := sim.NewWorld(soc.Mi8Pro(), 9)
	e, err := core.NewEngine(w, cfg)
	if err != nil {
		b.Fatal(err)
	}
	models := []*dnn.Model{dnn.MustByName("Inception v1"), dnn.MustByName("MobileNet v3")}
	env := sim.MustEnvironment(sim.EnvS1, 9)
	for i := 0; i < 200; i++ {
		for _, m := range models {
			if _, err := e.RunInference(m, env.Sample()); err != nil {
				b.Fatal(err)
			}
		}
	}
	var ratioSum float64
	var n int
	for i := 0; i < 20; i++ {
		for _, m := range models {
			c := env.Sample()
			tgt, err := e.Predict(m, c)
			if err != nil {
				b.Fatal(err)
			}
			meas, err := w.Expected(m, tgt, c)
			if err != nil {
				b.Fatal(err)
			}
			_, optMeas, err := w.BestTarget(m, c, sim.QoSNonStreamingS, 0)
			if err != nil {
				b.Fatal(err)
			}
			ratioSum += meas.EnergyJ / optMeas.EnergyJ
			n++
		}
	}
	return ratioSum / float64(n)
}

// BenchmarkAblationEpsilon sweeps the exploration probability (paper: 0.1).
func BenchmarkAblationEpsilon(b *testing.B) {
	for _, eps := range []float64{0.01, 0.1, 0.3} {
		b.Run("eps="+strconv.FormatFloat(eps, 'g', -1, 64), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := core.DefaultConfig()
				cfg.RL.Epsilon = eps
				b.ReportMetric(ablationEval(b, cfg), "energy/opt")
			}
		})
	}
}

// BenchmarkAblationHyper sweeps the learning rate gamma and discount mu
// (the paper evaluates {0.1, 0.5, 0.9} for each and picks 0.9 / 0.1).
func BenchmarkAblationHyper(b *testing.B) {
	for _, gamma := range []float64{0.1, 0.5, 0.9} {
		for _, mu := range []float64{0.1, 0.5, 0.9} {
			name := "g=" + strconv.FormatFloat(gamma, 'g', -1, 64) +
				"/m=" + strconv.FormatFloat(mu, 'g', -1, 64)
			b.Run(name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					cfg := core.DefaultConfig()
					cfg.RL.LearningRate = gamma
					cfg.RL.Discount = mu
					b.ReportMetric(ablationEval(b, cfg), "energy/opt")
				}
			})
		}
	}
}

// BenchmarkAblationDiscretization compares the paper's Table I bins against
// a DBSCAN-fitted state space (how the paper derived them) on prediction
// quality.
func BenchmarkAblationDiscretization(b *testing.B) {
	fitSamples := func() []core.Observation {
		var out []core.Observation
		for _, m := range dnn.Zoo() {
			for _, vs := range exp.VarianceGrid() {
				out = append(out, core.Observation{
					NumConv: m.NumConv(), NumFC: m.NumFC(), NumRC: m.NumRC(), MACs: m.MACs(),
					CoCPU: vs.CoCPU * 100, CoMem: vs.CoMem * 100,
					RSSIW: vs.RSSIW, RSSIP: vs.RSSIP,
				})
			}
		}
		return out
	}
	b.Run("tableI", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.ReportMetric(ablationEval(b, core.DefaultConfig()), "energy/opt")
		}
	})
	b.Run("dbscan-fit", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			states, err := core.FitStateSpace(fitSamples())
			if err != nil {
				b.Fatal(err)
			}
			cfg := core.DefaultConfig()
			cfg.States = states
			b.ReportMetric(ablationEval(b, cfg), "energy/opt")
		}
	})
}

// BenchmarkBaselinePolicies measures the per-request cost of each
// comparison policy.
func BenchmarkBaselinePolicies(b *testing.B) {
	w := sim.NewWorld(soc.Mi8Pro(), 1)
	m := dnn.MustByName("MobileNet v2")
	c := sim.Conditions{RSSIWLAN: -55, RSSIP2P: -55}
	policies := []sched.Policy{
		sched.EdgeCPU{World: w},
		&sched.EdgeBest{World: w},
		sched.CloudAll{World: w},
		&sched.ConnectedEdge{World: w},
		&sched.MOSAIC{World: w},
		&sched.NeuroSurgeon{World: w},
		sched.Opt{World: w},
	}
	for _, p := range policies {
		b.Run(p.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := p.Run(m, c); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkQTableSnapshot measures Q-table serialization (persistence path).
func BenchmarkQTableSnapshot(b *testing.B) {
	e, _, _ := trainedBenchEngine(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.SnapshotQTable(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Serving gateway benches -----------------------------------------------

// benchGateway builds a two-device gateway over lightly warmed engines.
func benchGateway(b *testing.B) *Gateway {
	b.Helper()
	m := dnn.MustByName("MobileNet v3")
	c := sim.Conditions{RSSIWLAN: -55, RSSIP2P: -55}
	var backends []GatewayBackend
	for i, dev := range []*soc.Device{soc.Mi8Pro(), soc.GalaxyS10e()} {
		e, err := core.NewEngine(sim.NewWorld(dev, int64(i+1)), core.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		for j := 0; j < 100; j++ {
			if _, err := e.RunInference(m, c); err != nil {
				b.Fatal(err)
			}
		}
		backends = append(backends, GatewayBackend{Device: dev.Name, Engine: e})
	}
	gw, err := NewGateway(backends, GatewayConfig{QueueDepth: 256})
	if err != nil {
		b.Fatal(err)
	}
	return gw
}

// BenchmarkGatewayThroughput measures closed-loop requests/sec through the
// serving gateway at increasing client concurrency — the perf baseline for
// the serving layer (each client has at most one request in flight, so
// ns/op is the per-request gateway overhead plus the engine step). The
// aggregate decision rate is reported as decisions/sec.
func BenchmarkGatewayThroughput(b *testing.B) {
	for _, clients := range []int{1, 4, 8, 16} {
		b.Run("clients="+strconv.Itoa(clients), func(b *testing.B) {
			gw := benchGateway(b)
			m := dnn.MustByName("MobileNet v3")
			c := sim.Conditions{RSSIWLAN: -55, RSSIP2P: -55}
			var remaining atomic.Int64
			remaining.Store(int64(b.N))
			b.ResetTimer()
			var wg sync.WaitGroup
			for cl := 0; cl < clients; cl++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for remaining.Add(-1) >= 0 {
						if _, err := gw.Do(Request{Model: m, Conditions: c}); err != nil {
							b.Error(err)
							return
						}
					}
				}()
			}
			wg.Wait()
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "decisions/sec")
			if err := gw.Shutdown(context.Background()); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkDecide measures the frozen decide fast path alone — observe,
// dense state index, lock-free RCU Q-row argmax — the path the allocs-per-op
// regression guard (make verify) holds at zero.
func BenchmarkDecide(b *testing.B) {
	e, m, c := trainedBenchEngine(b)
	e.Agent().Freeze()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Predict(m, c); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "decisions/sec")
}

// BenchmarkGatewaySubmit measures the admission-control path alone —
// open-loop submits that either enqueue or shed, never block — with the
// responses collected outside the timer.
func BenchmarkGatewaySubmit(b *testing.B) {
	gw := benchGateway(b)
	m := dnn.MustByName("MobileNet v3")
	c := sim.Conditions{RSSIWLAN: -55, RSSIP2P: -55}
	chans := make([]<-chan Response, 0, b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch, err := gw.Submit(Request{Model: m, Conditions: c})
		if err != nil {
			b.Fatal(err)
		}
		chans = append(chans, ch)
	}
	b.StopTimer()
	if err := gw.Shutdown(context.Background()); err != nil {
		b.Fatal(err)
	}
	for _, ch := range chans {
		<-ch
	}
}

// --- Routing-tier benches ---------------------------------------------------

// benchRouter builds a four-shard router, one lightly warmed lane per shard,
// with three weighted tenants — the multi-shard counterpart of benchGateway.
func benchRouter(b *testing.B) *Router {
	b.Helper()
	m := dnn.MustByName("MobileNet v3")
	c := sim.Conditions{RSSIWLAN: -55, RSSIP2P: -55}
	hardware := []*soc.Device{soc.Mi8Pro(), soc.GalaxyS10e(), soc.Mi8Pro(), soc.GalaxyS10e()}
	shards := make([]RouterShard, 0, len(hardware))
	for i, dev := range hardware {
		e, err := core.NewEngine(sim.NewWorld(dev, int64(i+1)), core.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		for j := 0; j < 100; j++ {
			if _, err := e.RunInference(m, c); err != nil {
				b.Fatal(err)
			}
		}
		name := "shard-" + strconv.Itoa(i)
		gw, err := NewGateway([]GatewayBackend{{Device: dev.Name + "-" + strconv.Itoa(i), Engine: e}},
			GatewayConfig{Name: name, QueueDepth: 256})
		if err != nil {
			b.Fatal(err)
		}
		shards = append(shards, RouterShard{Name: name, Gateway: gw})
	}
	rt, err := NewRouter(shards, RouterConfig{
		Tenants:      []RouterTenant{{Name: "gold", Weight: 4}, {Name: "silver", Weight: 2}, {Name: "best", Weight: 1}},
		GlobalBudget: 64,
	})
	if err != nil {
		b.Fatal(err)
	}
	return rt
}

// BenchmarkRouterThroughput measures closed-loop requests/sec through the
// full routing tier — tenant admission, DRR, least-loaded shard dispatch and
// the pipe hop — over four gateway shards; the delta against
// BenchmarkGatewayThroughput at the same client count is the routing tier's
// per-request overhead.
func BenchmarkRouterThroughput(b *testing.B) {
	tenants := []string{"gold", "silver", "best"}
	for _, clients := range []int{4, 16} {
		b.Run("shards=4/clients="+strconv.Itoa(clients), func(b *testing.B) {
			rt := benchRouter(b)
			m := dnn.MustByName("MobileNet v3")
			c := sim.Conditions{RSSIWLAN: -55, RSSIP2P: -55}
			var remaining atomic.Int64
			remaining.Store(int64(b.N))
			b.ResetTimer()
			var wg sync.WaitGroup
			for cl := 0; cl < clients; cl++ {
				wg.Add(1)
				go func(cl int) {
					defer wg.Done()
					for i := 0; remaining.Add(-1) >= 0; i++ {
						req := Request{Model: m, Conditions: c, Tenant: tenants[(cl+i)%len(tenants)]}
						if _, err := rt.Do(req); err != nil {
							b.Error(err)
							return
						}
					}
				}(cl)
			}
			wg.Wait()
			b.StopTimer()
			if err := rt.Shutdown(context.Background()); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// --- Extension experiment benches ------------------------------------------

func BenchmarkExtNPU(b *testing.B)       { runExperiment(b, "ext-npu") }
func BenchmarkExtPartition(b *testing.B) { runExperiment(b, "ext-partition") }
func BenchmarkExtSARSA(b *testing.B)     { runExperiment(b, "ext-sarsa") }
func BenchmarkExtOutage(b *testing.B)    { runExperiment(b, "ext-outage") }

// BenchmarkEngineTrainStepPartitions measures the training-step overhead
// with the enlarged (partition-augmented) action space.
func BenchmarkEngineTrainStepPartitions(b *testing.B) {
	w := sim.NewWorld(soc.Mi8Pro(), 1)
	cfg := core.DefaultConfig()
	cfg.PartitionActions = true
	e, err := core.NewEngine(w, cfg)
	if err != nil {
		b.Fatal(err)
	}
	m := dnn.MustByName("MobileNet v3")
	c := sim.Conditions{RSSIWLAN: -55, RSSIP2P: -55}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.RunInference(m, c); err != nil {
			b.Fatal(err)
		}
	}
}
