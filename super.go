package autoscale

import (
	"autoscale/internal/router"
	"autoscale/internal/serve"
	"autoscale/internal/super"
)

// Self-healing tier: a supervision loop on the virtual clock above the
// router, scoring shard health from signals the system already emits and
// remediating with hysteresis — probe, cordon, drain + warm re-home, restart
// with crash-loop backoff, condemn when the remediation budget runs out —
// plus the chaos-soak invariant auditor. See internal/super for full
// documentation.
type (
	// Supervisor is the self-healing loop over one router; drive it by
	// calling MaybeTick with each request's virtual arrival time, like the
	// capacity planner.
	Supervisor = super.Supervisor
	// SupervisorConfig tunes tick interval, score thresholds, hysteresis
	// widths and the remediation budget. Zero values select the defaults.
	SupervisorConfig = super.Config
	// SupervisorStatus is the /supervisor document.
	SupervisorStatus = super.Status
	// SupervisorAction is one remediation in the status log.
	SupervisorAction = super.Action
	// ChaosAuditor asserts the chaos-soak invariants: clock monotonicity
	// per shard incarnation, exactly-once request conservation, in-flight
	// settling to zero, and checkpoint CRC integrity.
	ChaosAuditor = super.Auditor
)

// NewSupervisor builds the self-healing loop over a router.
func NewSupervisor(rt *Router, cfg SupervisorConfig) (*Supervisor, error) {
	return super.New(rt, cfg)
}

// ServeSupervisorAdmin binds the admin/observability endpoint for a
// supervised deployment: the full router surface (merged metrics, /shards)
// plus /supervisor (per-shard health scores, remediation phases, the action
// log) and autoscale_super_* series appended to /metrics.
func ServeSupervisorAdmin(s *Supervisor, addr string) (*GatewayAdmin, error) {
	return serve.ServeAdminSource(s, addr)
}

// NewChaosAuditor builds an invariant auditor over a router and (optionally)
// the raw checkpoint store backing it — pass the *PolicyStore itself, not a
// fault sink, so the final CRC sweep sees real I/O.
func NewChaosAuditor(rt *router.Router, store *PolicyStore) (*ChaosAuditor, error) {
	return super.NewAuditor(rt, store)
}
