# Repo checks. `make verify` is the documented pre-merge gate: it keeps the
# concurrent serving/engine code race-clean on top of the tier-1
# build-and-test pass.

GO ?= go

.PHONY: build test vet fmt race race-policy race-exp race-fault fuzz-fault verify bench bench-all

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Fails when any file needs gofmt.
fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed:"; echo "$$unformatted"; exit 1; \
	fi

# internal/exp runs in -short mode under the race detector: its full-fidelity
# determinism tests exceed the 10-minute per-package test timeout once race
# instrumentation slows them 5-20x (notably on small machines), while the
# short suite already drives every concurrency path (worker pool, RunAll,
# concurrent ExecuteCtx). The full suite runs un-instrumented in `make test`.
race:
	$(GO) test -race $$($(GO) list ./... | grep -v '/internal/exp$$')
	$(GO) test -race -short ./internal/exp/

# The policy plane (checkpoint store, federation syncer, gateway wiring) is
# the most concurrency-heavy subsystem; give it a dedicated race pass.
race-policy:
	$(GO) test -race ./internal/policy/ ./internal/serve/ .

# The execution-context plane: the deterministic RNG/clock substrate and
# the parallel experiment harness built on it. The dedicated pass certifies
# concurrent World.ExecuteCtx and the worker pool race-free (exp in -short
# mode, see the race target note).
race-exp:
	$(GO) test -race ./internal/sim/ ./internal/exec/
	$(GO) test -race -short ./internal/exp/

# The fault plane: the scripted injector and the gateway's resilient offload
# path (breakers, retries, hedging) — the storm acceptance test must hold
# under race instrumentation.
race-fault:
	$(GO) test -race ./internal/fault/ ./internal/serve/ ./internal/sim/

# Fuzz smoke over the fault-schedule parser: any input that parses must also
# compile and answer injector queries without panicking.
fuzz-fault:
	$(GO) test -run '^$$' -fuzz FuzzScheduleParse -fuzztime 5s ./internal/fault/

# The full gate: tier-1 (build + test) plus formatting, vet, the race
# detector (which includes the dedicated policy-plane, exec-plane and
# fault-plane passes) and the schedule-parser fuzz smoke.
verify: build fmt vet race race-policy race-exp race-fault fuzz-fault

# Archive the representative benchmarks (end-to-end Fig 9 plus gateway
# throughput) as BENCH_exp.json: per-benchmark name, ns/op and allocs/op
# averaged over three repetitions.
bench:
	$(GO) test -run '^$$' -bench '^(BenchmarkFig9|BenchmarkGatewayThroughput)$$' \
		-benchmem -count=3 . > BENCH_exp.txt
	$(GO) run ./cmd/benchjson -in BENCH_exp.txt -out BENCH_exp.json
	@cat BENCH_exp.json

bench-all:
	$(GO) test -bench=. -benchmem
