# Repo checks. `make verify` is the documented pre-merge gate: it keeps the
# concurrent serving/engine code race-clean on top of the tier-1
# build-and-test pass.

GO ?= go

.PHONY: build test vet race verify bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# The full gate: tier-1 (build + test) plus vet and the race detector.
verify: build vet race

bench:
	$(GO) test -bench=. -benchmem
