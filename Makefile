# Repo checks. `make verify` is the documented pre-merge gate: it keeps the
# concurrent serving/engine code race-clean on top of the tier-1
# build-and-test pass.

GO ?= go

.PHONY: build test vet fmt race race-policy race-exp race-fault race-obs race-router race-plan race-hot race-super race-tracez alloc-guard fuzz-fault smoke-admin smoke-plan smoke-chaos smoke-traces chaos chaos-short verify bench bench-all bench-diff profile

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Fails when any file needs gofmt.
fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed:"; echo "$$unformatted"; exit 1; \
	fi

# internal/exp runs in -short mode under the race detector: its full-fidelity
# determinism tests exceed the 10-minute per-package test timeout once race
# instrumentation slows them 5-20x (notably on small machines), while the
# short suite already drives every concurrency path (worker pool, RunAll,
# concurrent ExecuteCtx). The full suite runs un-instrumented in `make test`.
race:
	$(GO) test -race $$($(GO) list ./... | grep -v '/internal/exp$$')
	$(GO) test -race -short ./internal/exp/

# The policy plane (checkpoint store, federation syncer, gateway wiring) is
# the most concurrency-heavy subsystem; give it a dedicated race pass.
race-policy:
	$(GO) test -race ./internal/policy/ ./internal/serve/ .

# The execution-context plane: the deterministic RNG/clock substrate and
# the parallel experiment harness built on it. The dedicated pass certifies
# concurrent World.ExecuteCtx and the worker pool race-free (exp in -short
# mode, see the race target note).
race-exp:
	$(GO) test -race ./internal/sim/ ./internal/exec/
	$(GO) test -race -short ./internal/exp/

# The fault plane: the scripted injector and the gateway's resilient offload
# path (breakers, retries, hedging) — the storm acceptance test must hold
# under race instrumentation.
race-fault:
	$(GO) test -race ./internal/fault/ ./internal/serve/ ./internal/sim/

# The telemetry plane: lock-free histograms, the seqlock metrics registry and
# the admin endpoint serving scrapes concurrently with the request path.
race-obs:
	$(GO) test -race ./internal/obs/ ./internal/serve/... ./internal/core/ ./internal/trace/

# The routing tier: cross-shard admission, DRR fairness and shard lifecycle
# run concurrently with pipe goroutines and the dispatcher — the shard-kill
# storm and the concurrent-kill accounting test must hold under race
# instrumentation, together with the serving layer they drive.
race-router:
	$(GO) test -race ./internal/router/ ./internal/serve/...

# The capacity-planning plane: the planner's actuation loop touches the
# router's setters, the gateways' active-lane masks and the admin endpoint
# concurrently with the request path — the surge acceptance drill must hold
# under race instrumentation.
race-plan:
	$(GO) test -race ./internal/plan/ ./internal/router/ ./internal/serve/

# The hot decide path: the dense RCU Q-table, the engine's lock-free agent
# pointer and the gateway's batched telemetry run lock-free readers against
# single-writer updates — the torn-read hunt and the serving suite must hold
# under race instrumentation.
race-hot:
	$(GO) test -race ./internal/rl/ ./internal/core/ ./internal/serve/

# The supervision tier: health scoring, the cordon/drain/restart ladder and
# the crash-loop budget run against the router's lifecycle concurrently with
# the request path. The soak is excluded here (it runs un-instrumented in
# chaos-short; race instrumentation slows the full matrix past the point of
# usefulness) — the gray-failure, crash-loop and status tests are the
# race-sensitive surface.
race-super:
	$(GO) test -race -run 'TestGrayFailureCordon|TestCrashLoopConvergesToDead|TestSupervisorStatusJSONAndProm' ./internal/super/

# The tracing plane: the tracer's ring and pool run against concurrent
# request goroutines, and the flight recorder takes notes from the breaker,
# supervisor and planner paths while admin scrapes read it — the tracez
# suite plus the traced serving paths must hold under race instrumentation.
race-tracez:
	$(GO) test -race ./internal/tracez/ ./internal/serve/

# Seeded chaos soak, small matrix (~seconds): 2 seeds at high intensity with
# the invariant auditor, byte-identical replay and the goroutine-leak check.
# Part of `make verify`.
chaos-short:
	$(GO) test -short -run '^TestChaosSoak$$' -count=1 ./internal/super/

# The full chaos soak: 5 seeds x 2 intensities, every fault kind, supervised
# three-shard fleet, all invariants. The long-soak counterpart of
# chaos-short; run it before touching the supervisor, router lifecycle or
# checkpoint planes.
chaos:
	$(GO) test -run '^TestChaosSoak$$' -count=1 -timeout 1800s -v ./internal/super/

# Allocs-per-op regression guards: the frozen decide fast path (observe,
# dense state index, RCU argmax) must stay at zero allocations with tracing
# disabled; provenance capture and the sampled trace lifecycle each get a
# 2 allocs/op budget. Runs un-instrumented (the race detector's shadow
# memory allocates).
alloc-guard:
	$(GO) test -run '^(TestDecideZeroAlloc|TestTracedDecideAllocBudget|TestTraceLifecycleAllocBudget)$$' .

# Fuzz smoke over the fault-schedule parser: any input that parses must also
# compile and answer injector queries without panicking.
fuzz-fault:
	$(GO) test -run '^$$' -fuzz FuzzScheduleParse -fuzztime 5s ./internal/fault/

# End-to-end scrape check: boot a small load with the admin endpoint up,
# then curl /healthz and /metrics like a monitoring agent would.
smoke-admin:
	@set -e; tmp=$$(mktemp -d); trap 'rm -rf $$tmp' EXIT; \
	$(GO) build -o $$tmp/autoscale-serve ./cmd/autoscale-serve; \
	$$tmp/autoscale-serve -n 60 -clients 4 -admin 127.0.0.1:0 -linger 8s > $$tmp/out 2>&1 & pid=$$!; \
	addr=; for i in $$(seq 1 100); do \
		addr=$$(sed -n 's#^admin listening on http://##p' $$tmp/out); \
		[ -n "$$addr" ] && break; sleep 0.1; done; \
	if [ -z "$$addr" ]; then echo "smoke-admin: no admin address"; cat $$tmp/out; kill $$pid 2>/dev/null; exit 1; fi; \
	curl -fsS "http://$$addr/healthz" | grep '^ok' > /dev/null; \
	curl -fsS "http://$$addr/metrics" > $$tmp/metrics; \
	grep '^autoscale_requests_submitted_total' $$tmp/metrics > /dev/null; \
	grep '^autoscale_rl_epsilon' $$tmp/metrics > /dev/null; \
	grep '^autoscale_phase_seconds_bucket' $$tmp/metrics > /dev/null; \
	wait $$pid; echo "smoke-admin: ok"

# End-to-end planner scrape check: boot a planned load, then curl /plan and
# the autoscale_plan_* series like a capacity dashboard would.
smoke-plan:
	@set -e; tmp=$$(mktemp -d); trap 'rm -rf $$tmp' EXIT; \
	$(GO) build -o $$tmp/autoscale-serve ./cmd/autoscale-serve; \
	$$tmp/autoscale-serve -n 200 -clients 2 -replicas 2 -shards 2 -plan \
		-admin 127.0.0.1:0 -linger 8s > $$tmp/out 2>&1 & pid=$$!; \
	addr=; for i in $$(seq 1 100); do \
		addr=$$(sed -n 's#^admin listening on http://##p' $$tmp/out); \
		[ -n "$$addr" ] && break; sleep 0.1; done; \
	if [ -z "$$addr" ]; then echo "smoke-plan: no admin address"; cat $$tmp/out; kill $$pid 2>/dev/null; exit 1; fi; \
	curl -fsS "http://$$addr/plan" > $$tmp/plan; \
	grep '"generation"' $$tmp/plan > /dev/null; \
	grep '"classes"' $$tmp/plan > /dev/null; \
	curl -fsS "http://$$addr/metrics" > $$tmp/metrics; \
	grep '^autoscale_plan_active_lanes' $$tmp/metrics > /dev/null; \
	grep '^autoscale_plan_class_attained' $$tmp/metrics > /dev/null; \
	wait $$pid; echo "smoke-plan: ok"

# End-to-end chaos check: a seeded storm over a supervised sharded fleet via
# the CLI, scraping /supervisor and the autoscale_super_* series, and
# requiring the run to end with "all invariants held" (the binary exits
# non-zero on any violation).
smoke-chaos:
	@set -e; tmp=$$(mktemp -d); trap 'rm -rf $$tmp' EXIT; \
	$(GO) build -o $$tmp/autoscale-serve ./cmd/autoscale-serve; \
	$$tmp/autoscale-serve -chaos -shards 2 -replicas 2 -n 1500 -clients 4 -seed 7 \
		-admin 127.0.0.1:0 -linger 8s > $$tmp/out 2>&1 & pid=$$!; \
	addr=; for i in $$(seq 1 100); do \
		addr=$$(sed -n 's#^admin listening on http://##p' $$tmp/out); \
		[ -n "$$addr" ] && break; sleep 0.1; done; \
	if [ -z "$$addr" ]; then echo "smoke-chaos: no admin address"; cat $$tmp/out; kill $$pid 2>/dev/null; exit 1; fi; \
	curl -fsS "http://$$addr/supervisor" > $$tmp/super; \
	grep '"ticks"' $$tmp/super > /dev/null; \
	grep '"phase"' $$tmp/super > /dev/null; \
	curl -fsS "http://$$addr/metrics" | grep '^autoscale_super_score' > /dev/null; \
	wait $$pid || { echo "smoke-chaos: run failed"; cat $$tmp/out; exit 1; }; \
	grep 'chaos audit: all invariants held' $$tmp/out > /dev/null; \
	echo "smoke-chaos: ok"

# End-to-end tracing check: a chaos storm with causal tracing and the flight
# recorder on, scraping /traces (index + chrome export) like an operator
# chasing an incident would, and requiring the supervisor's remediations to
# have left at least one incident bundle on disk.
smoke-traces:
	@set -e; tmp=$$(mktemp -d); trap 'rm -rf $$tmp' EXIT; \
	$(GO) build -o $$tmp/autoscale-serve ./cmd/autoscale-serve; \
	$$tmp/autoscale-serve -chaos -shards 2 -replicas 2 -n 1500 -clients 4 -seed 7 \
		-trace-sample 0.25 -flight-recorder $$tmp/fr \
		-admin 127.0.0.1:0 -linger 8s > $$tmp/out 2>&1 & pid=$$!; \
	addr=; for i in $$(seq 1 100); do \
		addr=$$(sed -n 's#^admin listening on http://##p' $$tmp/out); \
		[ -n "$$addr" ] && break; sleep 0.1; done; \
	if [ -z "$$addr" ]; then echo "smoke-traces: no admin address"; cat $$tmp/out; kill $$pid 2>/dev/null; exit 1; fi; \
	curl -fsS "http://$$addr/traces" > $$tmp/idx; \
	grep '"stats"' $$tmp/idx > /dev/null; \
	grep '"traces"' $$tmp/idx > /dev/null; \
	curl -fsS "http://$$addr/traces?format=chrome" > $$tmp/chrome; \
	grep 'traceEvents' $$tmp/chrome > /dev/null; \
	curl -fsS "http://$$addr/metrics" | grep '^autoscale_trace_kept_total' > /dev/null; \
	wait $$pid || { echo "smoke-traces: run failed"; cat $$tmp/out; exit 1; }; \
	ls $$tmp/fr/incident-*.json > /dev/null 2>&1 || { echo "smoke-traces: no incident bundle"; cat $$tmp/out; exit 1; }; \
	echo "smoke-traces: ok"

# The full gate: tier-1 (build + test) plus formatting, vet, the race
# detector (which includes the dedicated policy-plane, exec-plane, fault-plane,
# telemetry-plane, planning-plane, supervision-plane and tracing-plane
# passes), the schedule-parser fuzz smoke, the short chaos soak and the
# admin, planner, chaos and tracing scrape smokes.
verify: build fmt vet race race-policy race-exp race-fault race-obs race-router race-plan race-hot race-super race-tracez chaos-short alloc-guard fuzz-fault smoke-admin smoke-plan smoke-chaos smoke-traces

# Archive the representative benchmarks (end-to-end Fig 9, gateway and
# routing-tier throughput, the telemetry hot path, the router dispatch path
# and the planner recompute) as BENCH_exp.json: per-benchmark name, ns/op and allocs/op averaged
# over three repetitions.
bench:
	$(GO) test -run '^$$' -bench '^(BenchmarkFig9|BenchmarkDecide|BenchmarkGatewayThroughput|BenchmarkRouterThroughput)$$' \
		-benchmem -count=3 . > BENCH_exp.txt
	$(GO) test -run '^$$' -bench '^BenchmarkHistogramObserve' \
		-benchmem -count=3 ./internal/obs/ >> BENCH_exp.txt
	$(GO) test -run '^$$' -bench '^BenchmarkRouterDispatch$$' \
		-benchmem -count=3 ./internal/router/ >> BENCH_exp.txt
	$(GO) test -run '^$$' -bench '^BenchmarkPlannerRecompute$$' \
		-benchmem -count=3 ./internal/plan/ >> BENCH_exp.txt
	$(GO) run ./cmd/benchjson -in BENCH_exp.txt -out BENCH_exp.json
	@cat BENCH_exp.json

bench-all:
	$(GO) test -bench=. -benchmem

# Benchstat-style old-vs-new comparison of the archived benchmark snapshot.
# The previous snapshot defaults to the last committed BENCH_exp.json; run
# `make bench` first to refresh the current one.
bench-diff:
	@if [ ! -f BENCH_exp.prev.json ]; then \
		git show HEAD:BENCH_exp.json > BENCH_exp.prev.json 2>/dev/null || \
		{ echo "bench-diff: no BENCH_exp.prev.json and no committed BENCH_exp.json"; exit 1; }; \
	fi
	$(GO) run ./cmd/benchdiff -old BENCH_exp.prev.json -new BENCH_exp.json

# CPU and heap profiles of the serving hot path, from the closed-loop
# gateway bench. Inspect with `go tool pprof cpu.pprof` / `mem.pprof`.
profile:
	$(GO) test -run '^$$' -bench '^BenchmarkGatewayThroughput/clients=1$$' -benchtime=3s \
		-cpuprofile cpu.pprof -memprofile mem.pprof .
	@echo "profiles written: cpu.pprof mem.pprof (go tool pprof <file>)"
