# Repo checks. `make verify` is the documented pre-merge gate: it keeps the
# concurrent serving/engine code race-clean on top of the tier-1
# build-and-test pass.

GO ?= go

.PHONY: build test vet fmt race race-policy verify bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Fails when any file needs gofmt.
fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed:"; echo "$$unformatted"; exit 1; \
	fi

race:
	$(GO) test -race ./...

# The policy plane (checkpoint store, federation syncer, gateway wiring) is
# the most concurrency-heavy subsystem; give it a dedicated race pass.
race-policy:
	$(GO) test -race ./internal/policy/ ./internal/serve/ .

# The full gate: tier-1 (build + test) plus formatting, vet and the race
# detector (which includes the dedicated policy-plane pass).
verify: build fmt vet race race-policy

bench:
	$(GO) test -bench=. -benchmem
