package autoscale

import "autoscale/internal/tracez"

// Causal tracing plane: sampled requests carry a trace handle through
// router admission, DRR dispatch, gateway queueing, the decide step and
// the execution legs, accumulating a span tree whose decide span records
// full decision provenance (dense state index, per-action Q-values, the
// applied feasibility mask, the epsilon-draw exploration flag). Tail-based
// sampling keeps every trace that sheds, expires, fails over or hedges;
// the rest head-sample on the tracer's own deterministic stream, so a
// fixed-seed replay keeps an identical trace set. The flight recorder
// rides alongside: a structured event ring (breaker transitions,
// supervisor ladder edges, planner actuations, checkpoint I/O verdicts)
// snapshotted to disk as an incident bundle whenever the supervisor
// remediates. See internal/tracez for full documentation.
type (
	// Tracer owns sampling, the kept-trace ring and the exports backing
	// the admin /traces endpoints.
	Tracer = tracez.Tracer
	// TracerConfig tunes sample rate, ring capacity and the sampling
	// seed. Zero values select the defaults.
	TracerConfig = tracez.Config
	// ActiveTrace is the per-request handle threaded through the serving
	// tiers; every method is nil-safe, so untraced requests cost one
	// branch per call site.
	ActiveTrace = tracez.Active
	// RequestTrace is one finished trace: identity, flags, span tree and
	// decision provenance.
	RequestTrace = tracez.Trace
	// TraceSpan is one step of a request's lifecycle.
	TraceSpan = tracez.Span
	// TraceProvenance is the decide span's decision provenance.
	TraceProvenance = tracez.Provenance
	// TracerStats is the tracer's sampling-counter snapshot.
	TracerStats = tracez.Stats
	// TraceIndex is the admin /traces index document.
	TraceIndex = tracez.Index
	// FlightRecorder is the incident ring: structured control-plane
	// events plus kept traces, dumped as a JSON bundle on supervisor
	// remediation.
	FlightRecorder = tracez.FlightRecorder
	// FlightEvent is one structured entry in the recorder's ring.
	FlightEvent = tracez.Event
)

// Tail-keep flags: a trace carrying any of these is kept regardless of the
// head-sampling draw.
const (
	TraceFlagExpired  = tracez.FlagExpired
	TraceFlagShed     = tracez.FlagShed
	TraceFlagFailed   = tracez.FlagFailed
	TraceFlagFailover = tracez.FlagFailover
	TraceFlagHedged   = tracez.FlagHedged
	TraceFlagDegraded = tracez.FlagDegraded
)

// NewTracer builds a causal tracer. Wire it into a RouterConfig (the router
// starts traces at admission) or a GatewayConfig (a standalone gateway
// starts them at submit).
func NewTracer(cfg TracerConfig) *Tracer {
	return tracez.New(cfg)
}

// NewFlightRecorder builds an incident flight recorder over a tracer.
// dir "" keeps the ring in memory without disk bundles; maxEvents and
// maxDumps zero select the defaults (512 events, 8 bundles).
func NewFlightRecorder(tr *Tracer, dir string, maxEvents, maxDumps int) *FlightRecorder {
	return tracez.NewFlightRecorder(tr, dir, maxEvents, maxDumps)
}

// DecodeTraceBinary decodes the compact binary export (/traces?format=bin)
// back into traces.
func DecodeTraceBinary(b []byte) ([]RequestTrace, error) {
	return tracez.DecodeBinary(b)
}
