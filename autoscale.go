// Package autoscale is a Go reproduction of "AutoScale: Energy Efficiency
// Optimization for Stochastic Edge Inference Using Reinforcement Learning"
// (Kim & Wu, MICRO 2020).
//
// AutoScale decides, for every DNN inference request on a mobile device,
// where to run it — on one of the device's own processors (CPU/GPU/DSP, at a
// chosen DVFS step and numeric precision), on a locally connected edge
// device over Wi-Fi Direct, or in the cloud over Wi-Fi — so as to maximize
// energy efficiency while meeting latency (QoS) and accuracy constraints.
// The decision engine is tabular Q-learning over a discretized state of NN
// characteristics and stochastic runtime variance (co-running-app
// interference and radio signal strength).
//
// Because the paper's testbed (three phones, a tablet, a GPU server, a power
// meter and real radios) cannot ship in a library, this package runs against
// a calibrated simulator that reproduces the testbed's relative latency and
// power profiles; see DESIGN.md for the fidelity argument and EXPERIMENTS.md
// for paper-versus-measured results of every table and figure.
//
// # Quick start
//
//	world, _ := autoscale.NewWorld(autoscale.Mi8Pro, 1)
//	engine, _ := autoscale.NewEngine(world, autoscale.DefaultEngineConfig())
//	env, _ := autoscale.NewEnvironment(autoscale.EnvD2, 1) // web browser co-running
//	model, _ := autoscale.Model("MobileNet v3")
//	for i := 0; i < 200; i++ {
//	    d, _ := engine.RunInference(model, env.Sample())
//	    fmt.Println(d.Target, d.Measurement.LatencyS, d.Measurement.EnergyJ)
//	}
package autoscale

import (
	"fmt"

	"autoscale/internal/battery"
	"autoscale/internal/core"
	"autoscale/internal/dnn"
	"autoscale/internal/exp"
	"autoscale/internal/rl"
	"autoscale/internal/sched"
	"autoscale/internal/sim"
	"autoscale/internal/soc"
)

// Core engine types (see internal/core for full documentation).
type (
	// Engine is the AutoScale execution-scaling engine (observe ->
	// select -> execute -> reward -> update).
	Engine = core.Engine
	// EngineConfig assembles an Engine.
	EngineConfig = core.Config
	// EngineHealth is a read-only snapshot of an engine's learning health:
	// epsilon, Q-table coverage, visit entropy, TD-error EMA, windowed mean
	// reward (see Engine.Health).
	EngineHealth = core.Health
	// Decision records one engine step.
	Decision = core.Decision
	// StateSpace is the Table I state discretization.
	StateSpace = core.StateSpace
	// Observation is one raw state sample.
	Observation = core.Observation
	// RewardConfig parameterizes the reward of equation (5).
	RewardConfig = core.RewardConfig
	// ActionSpace is the DVFS/quantization-augmented action list.
	ActionSpace = core.ActionSpace
)

// Simulation types.
type (
	// World is the edge-cloud execution environment around one device.
	World = sim.World
	// Target is one execution action (location, engine, DVFS step,
	// precision).
	Target = sim.Target
	// Conditions is the stochastic runtime variance at one inference.
	Conditions = sim.Conditions
	// Measurement is an observed inference outcome.
	Measurement = sim.Measurement
	// Environment is one of the Table IV runtime environments.
	Environment = sim.Environment
	// Intensity selects the computer-vision usage mode.
	Intensity = sim.Intensity
)

// Workload types.
type (
	// DNNModel is an inference workload from the Table III zoo.
	DNNModel = dnn.Model
	// Precision is a numeric execution format.
	Precision = dnn.Precision
	// Task is an application domain (image classification, object
	// detection, translation).
	Task = dnn.Task
)

// Tasks of the zoo networks.
const (
	ImageClassification = dnn.ImageClassification
	ObjectDetection     = dnn.ObjectDetection
	Translation         = dnn.Translation
)

// Policy and experiment types.
type (
	// Policy decides and executes inference requests (baselines, prior
	// work, and the AutoScale adapters).
	Policy = sched.Policy
	// ExperimentTable is the rendered output of one experiment.
	ExperimentTable = exp.Table
	// ExperimentOptions controls experiment fidelity.
	ExperimentOptions = exp.Options
	// ExperimentRun is the outcome of one experiment in a RunExperiments
	// batch: its table (or error) plus the wall-clock it took.
	ExperimentRun = exp.RunOutcome
	// RLConfig holds Q-learning hyperparameters.
	RLConfig = rl.Config
)

// Device names accepted by NewWorld.
const (
	// Mi8Pro is the high-end phone with GPU and DSP.
	Mi8Pro = "Mi8Pro"
	// GalaxyS10e is the high-end phone with GPU but no DSP.
	GalaxyS10e = "GalaxyS10e"
	// MotoXForce is the mid-end phone.
	MotoXForce = "MotoXForce"
)

// Environment IDs of Table IV.
const (
	EnvS1 = sim.EnvS1
	EnvS2 = sim.EnvS2
	EnvS3 = sim.EnvS3
	EnvS4 = sim.EnvS4
	EnvS5 = sim.EnvS5
	EnvD1 = sim.EnvD1
	EnvD2 = sim.EnvD2
	EnvD3 = sim.EnvD3
	EnvD4 = sim.EnvD4
)

// Usage intensities.
const (
	NonStreaming = sim.NonStreaming
	Streaming    = sim.Streaming
)

// Execution locations.
const (
	LocationLocal     = sim.Local
	LocationConnected = sim.Connected
	LocationCloud     = sim.Cloud
)

// Precisions.
const (
	FP32 = dnn.FP32
	FP16 = dnn.FP16
	INT8 = dnn.INT8
)

// DeviceNames returns the evaluation phone names in Table II order.
func DeviceNames() []string { return []string{Mi8Pro, GalaxyS10e, MotoXForce} }

// NewWorld builds the standard edge-cloud world around the named phone (with
// the Galaxy Tab S6 as the connected edge and a Xeon+P100 server as the
// cloud), seeded for measurement noise.
func NewWorld(device string, seed int64) (*World, error) {
	var d *soc.Device
	switch device {
	case Mi8Pro:
		d = soc.Mi8Pro()
	case GalaxyS10e:
		d = soc.GalaxyS10e()
	case MotoXForce:
		d = soc.MotoXForce()
	default:
		return nil, fmt.Errorf("autoscale: unknown device %q (known: %v)", device, DeviceNames())
	}
	return sim.NewWorld(d, seed), nil
}

// DefaultEngineConfig returns the paper's engine configuration.
func DefaultEngineConfig() EngineConfig { return core.DefaultConfig() }

// NewEngine builds an AutoScale engine for a world.
func NewEngine(w *World, cfg EngineConfig) (*Engine, error) { return core.NewEngine(w, cfg) }

// NewEnvironment constructs a Table IV environment by ID.
func NewEnvironment(id string, seed int64) (*Environment, error) {
	return sim.NewEnvironment(id, seed)
}

// Models returns the ten-network zoo of Table III.
func Models() []*DNNModel { return dnn.Zoo() }

// Layer and LayerType describe custom-model construction.
type (
	// Layer is one functional layer of a network.
	Layer = dnn.Layer
	// LayerType classifies a layer (CONV, FC, RC, ...).
	LayerType = dnn.LayerType
)

// Layer types for custom models.
const (
	Conv    = dnn.Conv
	FC      = dnn.FC
	RC      = dnn.RC
	Pool    = dnn.Pool
	Norm    = dnn.Norm
	Softmax = dnn.Softmax
	Argmax  = dnn.Argmax
	Dropout = dnn.Dropout
)

// NewModel builds a custom inference workload to schedule alongside (or
// instead of) the Table III zoo. The accuracy map (percent, 0..100, keyed by
// precision) must include FP32.
func NewModel(name string, task Task, layers []Layer, inputBytes, outputBytes float64, accuracy map[Precision]float64) (*DNNModel, error) {
	return dnn.NewModel(name, task, layers, inputBytes, outputBytes, accuracy)
}

// Model looks up a zoo network by its Table III name.
func Model(name string) (*DNNModel, error) { return dnn.ByName(name) }

// RunExperiment regenerates one of the paper's tables or figures by ID
// (e.g. "fig9", "tableIII"); Experiments lists the valid IDs.
func RunExperiment(id string, opts ExperimentOptions) (*ExperimentTable, error) {
	return exp.Run(id, opts)
}

// RunExperiments runs several experiments concurrently on the shared
// worker pool (opts.Parallel workers; 0 means GOMAXPROCS) and returns the
// outcomes in the order the IDs were given. Results are deterministic:
// every Parallel setting produces identical tables.
func RunExperiments(ids []string, opts ExperimentOptions) []ExperimentRun {
	return exp.RunAll(ids, opts)
}

// Experiments returns the registered experiment IDs.
func Experiments() []string { return exp.IDs() }

// QuickOptions returns reduced-fidelity experiment options for smoke runs.
func QuickOptions(seed int64) ExperimentOptions { return exp.Quick(seed) }

// Battery is a coulomb-counting energy reservoir used to translate
// per-inference joules into battery life (see examples/daylife).
type Battery = battery.Battery

// NewBattery creates a battery from its datasheet rating (capacity in mAh,
// nominal voltage in volts).
func NewBattery(capacityMAh, nominalV float64) (*Battery, error) {
	return battery.New(capacityMAh, nominalV)
}
