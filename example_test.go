package autoscale_test

import (
	"fmt"

	"autoscale"
)

// ExampleNewEngine shows the minimal observe-select-execute-learn loop on
// the simulated Mi8Pro under a web-browser co-runner (environment D2).
func ExampleNewEngine() {
	world, err := autoscale.NewWorld(autoscale.Mi8Pro, 1)
	if err != nil {
		panic(err)
	}
	engine, err := autoscale.NewEngine(world, autoscale.DefaultEngineConfig())
	if err != nil {
		panic(err)
	}
	env, err := autoscale.NewEnvironment(autoscale.EnvD2, 1)
	if err != nil {
		panic(err)
	}
	model, err := autoscale.Model("MobileNet v3")
	if err != nil {
		panic(err)
	}
	for i := 0; i < 100; i++ {
		if _, err := engine.RunInference(model, env.Sample()); err != nil {
			panic(err)
		}
	}
	fmt.Println(len(engine.Agent().States()) > 0)
	// Output: true
}

// ExampleModel demonstrates the Table III zoo lookup.
func ExampleModel() {
	m, err := autoscale.Model("MobileBERT")
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s: %d CONV, %d FC, %d RC layers\n", m.Name, m.NumConv(), m.NumFC(), m.NumRC())
	// Output: MobileBERT: 0 CONV, 1 FC, 24 RC layers
}

// ExampleQoSFor shows the paper's per-scenario latency targets.
func ExampleQoSFor() {
	vision, _ := autoscale.Model("MobileNet v1")
	translation, _ := autoscale.Model("MobileBERT")
	fmt.Printf("non-streaming vision: %.0f ms\n", autoscale.QoSFor(vision, autoscale.NonStreaming)*1000)
	fmt.Printf("streaming vision:     %.1f ms\n", autoscale.QoSFor(vision, autoscale.Streaming)*1000)
	fmt.Printf("translation:          %.0f ms\n", autoscale.QoSFor(translation, autoscale.NonStreaming)*1000)
	// Output:
	// non-streaming vision: 50 ms
	// streaming vision:     33.3 ms
	// translation:          100 ms
}

// ExampleRunSession replays a 10-second burst of periodic camera frames
// against the oracle policy and reports the session outcome.
func ExampleRunSession() {
	world, _ := autoscale.NewWorld(autoscale.Mi8Pro, 1)
	model, _ := autoscale.Model("MobileNet v1")
	env, _ := autoscale.NewEnvironment(autoscale.EnvS1, 1)
	stats, err := autoscale.RunSession(autoscale.Opt(world, autoscale.NonStreaming), autoscale.SessionConfig{
		Model:     model,
		Env:       env,
		Arrival:   autoscale.Periodic{PeriodS: 0.5},
		DurationS: 10,
		IdleW:     1.0,
		Seed:      1,
	}, nil)
	if err != nil {
		panic(err)
	}
	fmt.Println(stats.Inferences > 0 && stats.ViolationRatio() == 0)
	// Output: true
}

// ExampleNewFleet provisions a warm-started engine for a second device from
// a donor trained on the first — the paper's learning transfer.
func ExampleNewFleet() {
	cfg := autoscale.DefaultEngineConfig()
	fleet, err := autoscale.NewFleet(autoscale.Mi8Pro, cfg, 2, 1)
	if err != nil {
		panic(err)
	}
	engine, err := fleet.Provision(autoscale.MotoXForce, cfg, 2)
	if err != nil {
		panic(err)
	}
	fmt.Println(len(engine.Agent().States()) > 0)
	// Output: true
}

// ExampleNewModel schedules a custom network that is not part of the
// Table III zoo.
func ExampleNewModel() {
	layers := []autoscale.Layer{
		{Name: "conv_0", Type: autoscale.Conv, MACs: 4e8, WeightBytes: 2e6, ActivationBytes: 3e5},
		{Name: "conv_1", Type: autoscale.Conv, MACs: 3e8, WeightBytes: 3e6, ActivationBytes: 2e5},
		{Name: "fc_0", Type: autoscale.FC, MACs: 2e6, WeightBytes: 4e6, ActivationBytes: 4e3},
	}
	model, err := autoscale.NewModel("TinyNet", autoscale.ImageClassification,
		layers, 150528, 4004, map[autoscale.Precision]float64{
			autoscale.FP32: 71.0,
			autoscale.INT8: 67.5,
		})
	if err != nil {
		panic(err)
	}
	world, _ := autoscale.NewWorld(autoscale.Mi8Pro, 1)
	engine, _ := autoscale.NewEngine(world, autoscale.DefaultEngineConfig())
	env, _ := autoscale.NewEnvironment(autoscale.EnvS1, 1)
	for i := 0; i < 100; i++ {
		if _, err := engine.RunInference(model, env.Sample()); err != nil {
			panic(err)
		}
	}
	target, _ := engine.Predict(model, autoscale.Conditions{RSSIWLAN: -55, RSSIP2P: -55})
	fmt.Println(target.Location == autoscale.LocationLocal || target.Location == autoscale.LocationConnected || target.Location == autoscale.LocationCloud)
	// Output: true
}
