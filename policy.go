package autoscale

import (
	"fmt"

	"autoscale/internal/policy"
)

// Policy plane: durable, versioned Q-table checkpoints and federated fleet
// policy sync (see internal/policy for full documentation). The store keeps
// crash-safe, CRC-checked, generation-numbered snapshots per device; the
// federation layer merges compatible tables visit-count-weighted into a
// shared fleet policy that new or restarted devices warm-start from —
// the paper's Section VI-C learning transfer, operationalized.
type (
	// PolicyStore is the crash-safe checkpoint store.
	PolicyStore = policy.Store
	// PolicyCheckpoint is one durable policy snapshot (metadata + Q-table).
	PolicyCheckpoint = policy.Checkpoint
	// PolicyMeta is the checkpoint metadata carried in the envelope.
	PolicyMeta = policy.Meta
	// PolicySink is the store surface the gateway and syncer depend on.
	PolicySink = policy.Sink
	// PolicySyncer is the background checkpoint/merge/warm-start loop.
	PolicySyncer = policy.Syncer
	// PolicySyncConfig tunes sync interval and save retry/backoff.
	PolicySyncConfig = policy.SyncConfig
	// PolicySyncReport summarizes one federation pass.
	PolicySyncReport = policy.Report
	// PolicyNode is one fleet member (device name + engine) under sync.
	PolicyNode = policy.Node
	// PolicyFaultSink wraps a sink with scripted I/O faults (write failure,
	// slow fsync, disk-full) for chaos drills; wire its Verdict from a fault
	// injector's CheckpointIO query.
	PolicyFaultSink = policy.FaultSink
	// PolicyIOVerdict is a fault sink's per-operation ruling.
	PolicyIOVerdict = policy.IOVerdict
)

// Fault-sink I/O verdicts.
const (
	PolicyIOHealthy   = policy.IOHealthy
	PolicyIOSlow      = policy.IOSlow
	PolicyIOFailWrite = policy.IOFailWrite
	PolicyIOFailAll   = policy.IOFailAll
)

// Policy plane sentinel errors.
var (
	ErrPolicyNotEnvelope  = policy.ErrNotEnvelope
	ErrPolicyCorrupt      = policy.ErrCorrupt
	ErrPolicyVersion      = policy.ErrVersion
	ErrNoPolicyCheckpoint = policy.ErrNoCheckpoint
	ErrPolicyStaleGen     = policy.ErrStaleGeneration
	// ErrPolicyInjectedIO marks checkpoint-store damage dealt by a fault
	// sink, distinguishing scripted I/O failures from real bugs.
	ErrPolicyInjectedIO = policy.ErrInjectedIO
)

// OpenPolicyStore creates (or reopens) a checkpoint store rooted at dir,
// keeping the last retain generations per device (<=0 uses the default).
func OpenPolicyStore(dir string, retain int) (*PolicyStore, error) {
	return policy.Open(dir, retain)
}

// NewPolicyCheckpoint snapshots an engine's current Q-table as a checkpoint
// for the named device, stamped with the engine's config hash.
func NewPolicyCheckpoint(e *Engine, device string) (*PolicyCheckpoint, error) {
	snap, err := e.SnapshotQTable()
	if err != nil {
		return nil, err
	}
	return policy.NewCheckpoint(device, e.ConfigHash(), snap)
}

// MergePolicies federates compatible checkpoints into one shared fleet
// policy: rows known to one device pass through, rows known to several are
// averaged per action weighted by each device's visit count for the state.
func MergePolicies(cks ...*PolicyCheckpoint) (*PolicyCheckpoint, error) {
	return policy.Merge(cks)
}

// RestoreFromCheckpoint warm-starts an engine from a checkpoint, refusing
// incompatible tables (config-hash mismatch).
func RestoreFromCheckpoint(e *Engine, ck *PolicyCheckpoint) error {
	if got, want := ck.ConfigHash, e.ConfigHash(); got != want {
		return fmt.Errorf("autoscale: checkpoint config hash %s does not match engine %s", got, want)
	}
	return e.RestoreQTable(ck.Snapshot)
}

// NewPolicySyncer builds a federation syncer over a checkpoint sink and a
// node source; Gateway.StartPolicySync wires one up automatically for a
// serving fleet.
func NewPolicySyncer(sink PolicySink, nodes func() []PolicyNode, cfg PolicySyncConfig) (*PolicySyncer, error) {
	return policy.NewSyncer(sink, nodes, cfg)
}

// DecodePolicyCheckpoint verifies and parses checkpoint envelope bytes
// (ErrPolicyNotEnvelope for non-envelope data, ErrPolicyCorrupt /
// ErrPolicyVersion for damaged or unsupported files).
func DecodePolicyCheckpoint(data []byte) (*PolicyCheckpoint, error) {
	return policy.Decode(data)
}

// EncodePolicyCheckpoint serializes a checkpoint into envelope bytes.
func EncodePolicyCheckpoint(ck *PolicyCheckpoint) ([]byte, error) {
	return policy.Encode(ck)
}

// ReadPolicyCheckpoint / WritePolicyCheckpoint move standalone envelope
// files (outside store semantics — CLI and tooling paths).
func ReadPolicyCheckpoint(path string) (*PolicyCheckpoint, error) {
	return policy.ReadFile(path)
}

// WritePolicyCheckpoint writes a checkpoint to a standalone envelope file.
func WritePolicyCheckpoint(path string, ck *PolicyCheckpoint) error {
	return policy.WriteFile(path, ck)
}
