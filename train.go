package autoscale

import (
	"fmt"
	"os"

	"autoscale/internal/exp"
	"autoscale/internal/sched"
	"autoscale/internal/sim"
)

// Train runs the paper's training protocol on an engine: runsPerState
// epsilon-greedy inference runs for every model in every runtime-variance
// state of the Table I grid (the paper uses 100).
func Train(e *Engine, models []*DNNModel, runsPerState int, seed int64) error {
	return exp.TrainEngine(e, exp.TrainConfig{
		Models:       models,
		RunsPerState: runsPerState,
		Intensity:    e.Config().Intensity,
		Accuracy:     e.Config().Reward.AccuracyTarget,
		Seed:         seed,
	})
}

// NewTrainedEngine builds an engine for the world and trains it on the full
// zoo with the paper's protocol.
func NewTrainedEngine(w *World, cfg EngineConfig, runsPerState int, seed int64) (*Engine, error) {
	return exp.NewTrainedEngine(w, cfg, exp.TrainConfig{
		Models:       Models(),
		RunsPerState: runsPerState,
		Intensity:    cfg.Intensity,
		Accuracy:     cfg.Reward.AccuracyTarget,
		Seed:         seed,
	})
}

// AsPolicy adapts an engine to the Policy interface so it can be evaluated
// alongside the baselines.
func AsPolicy(e *Engine) Policy { return &exp.AutoScalePolicy{Engine: e} }

// Baselines constructs the paper's comparison policies for a world:
// Edge (CPU FP32), Edge (Best), Cloud, Connected Edge, and the Opt oracle.
func Baselines(w *World, intensity Intensity) []Policy {
	return exp.Baselines(w, intensity, 0)
}

// PriorWork constructs the MOSAIC- and NeuroSurgeon-style comparators.
func PriorWork(w *World, intensity Intensity) []Policy {
	return []Policy{
		&sched.MOSAIC{World: w, Intensity: intensity},
		&sched.NeuroSurgeon{World: w, Intensity: intensity},
	}
}

// Opt returns the oracle policy for a world.
func Opt(w *World, intensity Intensity) Policy {
	return sched.Opt{World: w, Intensity: intensity}
}

// SaveQTable writes an engine's Q-table snapshot to a file.
func SaveQTable(e *Engine, path string) error {
	data, err := e.SnapshotQTable()
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("autoscale: save q-table: %w", err)
	}
	return nil
}

// LoadQTable restores an engine's Q-table from a file written by SaveQTable.
func LoadQTable(e *Engine, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("autoscale: load q-table: %w", err)
	}
	return e.RestoreQTable(data)
}

// QoSFor returns the latency target (seconds) of the paper's application
// scenarios for a model and usage intensity.
func QoSFor(m *DNNModel, intensity Intensity) float64 {
	return sim.QoSFor(m.Task == Translation, intensity)
}
