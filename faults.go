package autoscale

import (
	"autoscale/internal/exec"
	"autoscale/internal/fault"
)

// Fault injection: deterministic, scripted failures for resilience testing.
// A FaultSchedule declares what goes wrong and when — outage windows (solid
// or Markov up/down), RSSI degradation ramps, server queueing spikes,
// thermal throttles, worker crashes, checkpoint corruption — and compiles
// into an immutable FaultInjector whose every stochastic choice derives from
// an execution context, so the same schedule and seed replay the exact same
// storm (see internal/fault for full documentation).
type (
	// FaultSchedule is a declarative list of fault specs, loadable from JSON.
	FaultSchedule = fault.Schedule
	// FaultSpec describes one fault: its kind, where it applies, and when.
	FaultSpec = fault.Spec
	// FaultKind names a fault class (outage, rssi_ramp, queue_spike,
	// thermal, worker_crash, checkpoint_corrupt).
	FaultKind = fault.Kind
	// FaultInjector is a compiled, immutable schedule answering point-in-time
	// queries ("is the cloud down at t=3.2s?"). Safe for concurrent use; a
	// nil injector is inert.
	FaultInjector = fault.Injector
	// FaultEvent is a compiled one-shot event (crash or corruption drill)
	// targeted at a device.
	FaultEvent = fault.Event
)

// Fault kinds.
const (
	FaultOutage            = fault.KindOutage
	FaultRSSIRamp          = fault.KindRSSIRamp
	FaultQueueSpike        = fault.KindQueueSpike
	FaultThermal           = fault.KindThermal
	FaultWorkerCrash       = fault.KindWorkerCrash
	FaultCheckpointCorrupt = fault.KindCheckpointCorrupt
	FaultShardCrash        = fault.KindShardCrash
	FaultLoadSurge         = fault.KindLoadSurge
	FaultGrayDegrade       = fault.KindGrayDegrade
	FaultCheckpointIO      = fault.KindCheckpointIO
	FaultSyncPartition     = fault.KindSyncPartition
)

// Checkpoint-store I/O fault modes (FaultCheckpointIO specs).
const (
	FaultIOWriteFail = fault.IOWriteFail
	FaultIOSlowFsync = fault.IOSlowFsync
	FaultIODiskFull  = fault.IODiskFull
)

// Fault sites and links.
const (
	FaultSiteCloud     = fault.SiteCloud
	FaultSiteConnected = fault.SiteConnected
	FaultLinkWLAN      = fault.LinkWLAN
	FaultLinkP2P       = fault.LinkP2P
)

// ParseFaultSchedule decodes and validates a JSON fault schedule.
func ParseFaultSchedule(data []byte) (*FaultSchedule, error) { return fault.Parse(data) }

// LoadFaultSchedule reads and validates a JSON fault schedule file.
func LoadFaultSchedule(path string) (*FaultSchedule, error) { return fault.Load(path) }

// NewFaultInjector compiles a schedule into an injector whose Markov outage
// windows are drawn from ctx's named streams. A nil schedule yields a nil —
// inert — injector. Panics if the schedule fails validation; call
// (*FaultSchedule).Validate first for untrusted input.
func NewFaultInjector(s *FaultSchedule, ctx *ExecContext) *FaultInjector {
	return fault.New(s, ctx)
}

// CompileFaultSchedule is the common one-liner: derive the canonical "faults"
// child context from seed and compile the schedule against it, matching what
// the experiment harness and CLIs do.
func CompileFaultSchedule(s *FaultSchedule, seed int64) *FaultInjector {
	return fault.New(s, exec.NewRoot(seed).Child("faults"))
}

// FaultRandomOpts scopes RandomFaultSchedule's generation: which device
// lanes and shards exist, and how long the storm runs.
type FaultRandomOpts = fault.RandomOpts

// RandomFaultSchedule generates a seeded chaos schedule mixing every fault
// kind over the given fleet — the storm behind `autoscale-serve -chaos` and
// `make chaos`. Intensity in (0, 1] scales fault count and window length;
// the same seed and opts always yield the same schedule.
func RandomFaultSchedule(seed int64, intensity float64, opt FaultRandomOpts) *FaultSchedule {
	return fault.Randomize(seed, intensity, opt)
}
