module autoscale

go 1.22
