module autoscale

go 1.23.0
