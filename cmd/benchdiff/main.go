// Command benchdiff compares two BENCH_exp.json snapshots (cmd/benchjson
// output) and prints a benchstat-style old-vs-new table: ns/op, B/op and
// allocs/op per benchmark with percentage deltas. Benchmarks present in
// only one snapshot are listed with a dash on the missing side.
//
// Usage:
//
//	git show HEAD:BENCH_exp.json > BENCH_exp.prev.json
//	make bench
//	benchdiff -old BENCH_exp.prev.json -new BENCH_exp.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
)

// result mirrors cmd/benchjson's Result.
type result struct {
	Name        string  `json:"name"`
	Runs        int     `json:"runs"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

func load(path string) (map[string]result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rs []result
	if err := json.Unmarshal(data, &rs); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[string]result, len(rs))
	for _, r := range rs {
		out[r.Name] = r
	}
	return out, nil
}

// cell renders one old/new/delta triple. A negative delta is an
// improvement for every metric benchdiff prints.
func cell(oldV, newV float64, haveOld, haveNew bool) string {
	switch {
	case !haveOld && !haveNew:
		return ""
	case !haveOld:
		return fmt.Sprintf("       -  -> %10.2f", newV)
	case !haveNew:
		return fmt.Sprintf("%10.2f ->        -", oldV)
	}
	s := fmt.Sprintf("%10.2f -> %10.2f", oldV, newV)
	if oldV != 0 {
		s += fmt.Sprintf("  %+7.2f%%", (newV-oldV)/oldV*100)
	}
	return s
}

func main() {
	var (
		oldPath = flag.String("old", "BENCH_exp.prev.json", "previous snapshot")
		newPath = flag.String("new", "BENCH_exp.json", "current snapshot")
	)
	flag.Parse()

	oldRes, err := load(*oldPath)
	if err != nil {
		fatal(err)
	}
	newRes, err := load(*newPath)
	if err != nil {
		fatal(err)
	}

	names := make(map[string]bool)
	for n := range oldRes {
		names[n] = true
	}
	for n := range newRes {
		names[n] = true
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)

	for _, name := range sorted {
		o, haveOld := oldRes[name]
		n, haveNew := newRes[name]
		fmt.Println(name)
		fmt.Printf("  ns/op:     %s\n", cell(o.NsPerOp, n.NsPerOp, haveOld, haveNew))
		if o.BytesPerOp != 0 || n.BytesPerOp != 0 {
			fmt.Printf("  B/op:      %s\n", cell(o.BytesPerOp, n.BytesPerOp, haveOld, haveNew))
		}
		if o.AllocsPerOp != 0 || n.AllocsPerOp != 0 {
			fmt.Printf("  allocs/op: %s\n", cell(o.AllocsPerOp, n.AllocsPerOp, haveOld, haveNew))
		}
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
	os.Exit(1)
}
