package main

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

func quick(t *testing.T) config {
	t.Helper()
	return config{
		devices: []string{"Mi8Pro", "GalaxyS10e"},
		model:   "MobileNet v1",
		envID:   "S1",
		n:       40,
		clients: 4,
		shed:    "newest",
		seed:    1,
	}
}

func TestRunClosedLoop(t *testing.T) {
	if err := run(quick(t), os.Stdout); err != nil {
		t.Fatal(err)
	}
}

func TestRunOpenLoopWithDeadline(t *testing.T) {
	c := quick(t)
	c.rate = 5000 // fast open loop
	c.deadline = 50 * time.Millisecond
	c.shed = "oldest"
	c.failover = true
	c.n = 30
	if err := run(c, os.Stdout); err != nil {
		t.Fatal(err)
	}
}

func TestRunWritesSnapshots(t *testing.T) {
	c := quick(t)
	c.n = 20
	c.snapdir = t.TempDir()
	if err := run(c, os.Stdout); err != nil {
		t.Fatal(err)
	}
	for _, dev := range c.devices {
		path := filepath.Join(c.snapdir, dev+".qtable.json")
		info, err := os.Stat(path)
		if err != nil {
			t.Fatalf("missing snapshot: %v", err)
		}
		if info.Size() == 0 {
			t.Fatalf("empty snapshot %s", path)
		}
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	c := quick(t)
	c.shed = "random"
	if err := run(c, os.Stdout); err == nil {
		t.Error("bad shed policy accepted")
	}
	c = quick(t)
	c.model = "AlexNet"
	if err := run(c, os.Stdout); err == nil {
		t.Error("unknown model accepted")
	}
	c = quick(t)
	c.devices = []string{"iPhone"}
	if err := run(c, os.Stdout); err == nil {
		t.Error("unknown device accepted")
	}
	c = quick(t)
	c.envID = "S9"
	if err := run(c, os.Stdout); err == nil {
		t.Error("unknown environment accepted")
	}
}
