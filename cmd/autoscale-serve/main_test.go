package main

import (
	"os"
	"testing"
	"time"

	"autoscale"
)

func quick(t *testing.T) config {
	t.Helper()
	return config{
		devices: []string{"Mi8Pro", "GalaxyS10e"},
		model:   "MobileNet v1",
		envID:   "S1",
		n:       40,
		clients: 4,
		shed:    "newest",
		seed:    1,
	}
}

func TestRunClosedLoop(t *testing.T) {
	if err := run(quick(t), os.Stdout); err != nil {
		t.Fatal(err)
	}
}

func TestRunOpenLoopWithDeadline(t *testing.T) {
	c := quick(t)
	c.rate = 5000 // fast open loop
	c.deadline = 50 * time.Millisecond
	c.shed = "oldest"
	c.failover = true
	c.n = 30
	if err := run(c, os.Stdout); err != nil {
		t.Fatal(err)
	}
}

func TestRunWritesSnapshots(t *testing.T) {
	c := quick(t)
	c.n = 20
	c.snapdir = t.TempDir()
	c.sync = time.Hour // exercise the sync wiring; only shutdown will flush
	if err := run(c, os.Stdout); err != nil {
		t.Fatal(err)
	}
	store, err := autoscale.OpenPolicyStore(c.snapdir, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, dev := range c.devices {
		ck, err := store.Latest(dev)
		if err != nil {
			t.Fatalf("missing checkpoint for %s: %v", dev, err)
		}
		if ck.Generation != 1 || ck.States == 0 {
			t.Fatalf("degenerate checkpoint for %s: %+v", dev, ck.Meta)
		}
	}
	// A second run against the same store warm-starts and flushes gen 2.
	if err := run(c, os.Stdout); err != nil {
		t.Fatal(err)
	}
	for _, dev := range c.devices {
		ck, err := store.Latest(dev)
		if err != nil {
			t.Fatal(err)
		}
		if ck.Generation != 2 {
			t.Fatalf("restarted fleet wrote gen %d for %s, want 2", ck.Generation, dev)
		}
	}
}

func TestRunSyncNeedsStore(t *testing.T) {
	c := quick(t)
	c.sync = time.Second
	if err := run(c, os.Stdout); err == nil {
		t.Error("-sync without -snapshots accepted")
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	c := quick(t)
	c.shed = "random"
	if err := run(c, os.Stdout); err == nil {
		t.Error("bad shed policy accepted")
	}
	c = quick(t)
	c.model = "AlexNet"
	if err := run(c, os.Stdout); err == nil {
		t.Error("unknown model accepted")
	}
	c = quick(t)
	c.devices = []string{"iPhone"}
	if err := run(c, os.Stdout); err == nil {
		t.Error("unknown device accepted")
	}
	c = quick(t)
	c.envID = "S9"
	if err := run(c, os.Stdout); err == nil {
		t.Error("unknown environment accepted")
	}
}
