package main

import (
	"io"
	"net/http"
	"os"
	"strings"
	"testing"
	"time"

	"autoscale"
)

func quick(t *testing.T) config {
	t.Helper()
	return config{
		devices: []string{"Mi8Pro", "GalaxyS10e"},
		model:   "MobileNet v1",
		envID:   "S1",
		n:       40,
		clients: 4,
		shed:    "newest",
		seed:    1,
	}
}

func TestRunClosedLoop(t *testing.T) {
	if err := run(quick(t), os.Stdout); err != nil {
		t.Fatal(err)
	}
}

func TestRunOpenLoopWithDeadline(t *testing.T) {
	c := quick(t)
	c.rate = 5000 // fast open loop
	c.deadline = 50 * time.Millisecond
	c.shed = "oldest"
	c.failover = true
	c.n = 30
	if err := run(c, os.Stdout); err != nil {
		t.Fatal(err)
	}
}

func TestRunWritesSnapshots(t *testing.T) {
	c := quick(t)
	c.n = 20
	c.snapdir = t.TempDir()
	c.sync = time.Hour // exercise the sync wiring; only shutdown will flush
	if err := run(c, os.Stdout); err != nil {
		t.Fatal(err)
	}
	store, err := autoscale.OpenPolicyStore(c.snapdir, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, dev := range c.devices {
		ck, err := store.Latest(dev)
		if err != nil {
			t.Fatalf("missing checkpoint for %s: %v", dev, err)
		}
		if ck.Generation != 1 || ck.States == 0 {
			t.Fatalf("degenerate checkpoint for %s: %+v", dev, ck.Meta)
		}
	}
	// A second run against the same store warm-starts and flushes gen 2.
	if err := run(c, os.Stdout); err != nil {
		t.Fatal(err)
	}
	for _, dev := range c.devices {
		ck, err := store.Latest(dev)
		if err != nil {
			t.Fatal(err)
		}
		if ck.Generation != 2 {
			t.Fatalf("restarted fleet wrote gen %d for %s, want 2", ck.Generation, dev)
		}
	}
}

// TestRunAdminEndpoint boots a load with -admin and -linger, scrapes
// /metrics and /healthz while the gateway lingers, and checks the exposition
// carries the request counters and learning-health gauges.
func TestRunAdminEndpoint(t *testing.T) {
	c := quick(t)
	c.n = 30
	c.admin = "127.0.0.1:0"
	c.linger = 3 * time.Second

	f, err := os.Create(t.TempDir() + "/out")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	done := make(chan error, 1)
	go func() { done <- run(c, f) }()

	// The address is printed before the load starts; poll the output file.
	var addr string
	for deadline := time.Now().Add(10 * time.Second); addr == "" && time.Now().Before(deadline); {
		b, _ := os.ReadFile(f.Name())
		for _, ln := range strings.Split(string(b), "\n") {
			if rest, ok := strings.CutPrefix(ln, "admin listening on http://"); ok {
				addr = rest
			}
		}
		if addr == "" {
			time.Sleep(20 * time.Millisecond)
		}
	}
	if addr == "" {
		t.Fatalf("admin address never printed; run: %v", <-done)
	}

	get := func(path string) (int, string) {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}
	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz = %d during linger", code)
	}
	code, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	for _, want := range []string{
		"autoscale_requests_submitted_total",
		"autoscale_request_latency_seconds_bucket",
		`autoscale_rl_epsilon{device="Mi8Pro"}`,
		`autoscale_rl_coverage{device="GalaxyS10e"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	out, _ := os.ReadFile(f.Name())
	if !strings.Contains(string(out), "learning health:") {
		t.Error("final report lacks the learning-health summary")
	}
}

// TestRunPlanned drives the planner path end to end: SLO classes become the
// fairness tenants, the final report carries the plan decision and per-class
// attainment lines, and the same seed reproduces the same plan summary.
func TestRunPlanned(t *testing.T) {
	c := quick(t)
	c.plan = true
	c.replicas = 2
	c.shards = 2
	c.n = 200
	// One client keeps the drive fully sequential, so the plan decision
	// sequence is a pure function of the seed and the summaries must match
	// byte for byte across runs.
	c.clients = 1
	planReport := func() string {
		f, err := os.Create(t.TempDir() + "/out")
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		if err := run(c, f); err != nil {
			t.Fatal(err)
		}
		b, _ := os.ReadFile(f.Name())
		out := string(b)
		if i := strings.Index(out, "\nplan:"); i >= 0 {
			return out[i:]
		}
		return ""
	}
	report := planReport()
	if report == "" {
		t.Fatal("planned run printed no plan summary")
	}
	for _, want := range []string{"plan: generation", "slo gold", "slo silver", "slo best", "target p95"} {
		if !strings.Contains(report, want) {
			t.Errorf("plan summary missing %q:\n%s", want, report)
		}
	}
	if again := planReport(); again != report {
		t.Errorf("same seed produced different plan summaries:\n%s\nvs\n%s", report, again)
	}
}

func TestRunPlannedRejectsBadFlags(t *testing.T) {
	c := quick(t)
	c.sloClasses = "gold:250ms"
	if err := run(c, os.Stdout); err == nil {
		t.Error("-slo-classes without -plan accepted")
	}
	c = quick(t)
	c.plan = true
	c.tenants = "gold:4"
	if err := run(c, os.Stdout); err == nil {
		t.Error("-plan with -tenants accepted")
	}
	c = quick(t)
	c.plan = true
	c.sloClasses = "gold:not-a-duration"
	if err := run(c, os.Stdout); err == nil {
		t.Error("bad -slo-classes spec accepted")
	}
}

func TestRunLingerNeedsAdmin(t *testing.T) {
	c := quick(t)
	c.linger = time.Second
	if err := run(c, os.Stdout); err == nil {
		t.Error("-linger without -admin accepted")
	}
}

func TestRunSyncNeedsStore(t *testing.T) {
	c := quick(t)
	c.sync = time.Second
	if err := run(c, os.Stdout); err == nil {
		t.Error("-sync without -snapshots accepted")
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	c := quick(t)
	c.shed = "random"
	if err := run(c, os.Stdout); err == nil {
		t.Error("bad shed policy accepted")
	}
	c = quick(t)
	c.model = "AlexNet"
	if err := run(c, os.Stdout); err == nil {
		t.Error("unknown model accepted")
	}
	c = quick(t)
	c.devices = []string{"iPhone"}
	if err := run(c, os.Stdout); err == nil {
		t.Error("unknown device accepted")
	}
	c = quick(t)
	c.envID = "S9"
	if err := run(c, os.Stdout); err == nil {
		t.Error("unknown environment accepted")
	}
}
