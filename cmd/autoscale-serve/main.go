// Command autoscale-serve load-tests the fleet-serving gateway: it
// provisions one engine per device (optionally warm-started from a trained
// donor), floods them with inference requests from concurrent clients —
// closed-loop or Poisson open-loop — and prints the gateway's metrics
// snapshot: served/shed/expired counts, latency and energy distributions,
// queue high watermark and the decision breakdown.
//
// Usage:
//
//	autoscale-serve -devices Mi8Pro,GalaxyS10e -clients 16 -n 2000
//	autoscale-serve -devices MotoXForce -rate 200 -deadline 50ms -shed oldest
//	autoscale-serve -donor Mi8Pro -train 60 -devices GalaxyS10e,MotoXForce
//	autoscale-serve -faults examples/faults/storm.json -resilient -hedge
//	autoscale-serve -admin :9090 -linger 30s   # scrape /metrics while it runs
//	autoscale-serve -shards 4 -replicas 4 -tenants gold:4,silver:2,best:1
//	autoscale-serve -shards 2 -replicas 4 -plan -slo-classes "gold:250ms:4,best:1s:1:100ms"
//	autoscale-serve -chaos -chaos-intensity 0.9 -shards 3 -replicas 2 -admin :9090
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"autoscale"
)

func main() {
	var (
		devices   = flag.String("devices", "Mi8Pro,GalaxyS10e", "comma-separated device fleet")
		donor     = flag.String("donor", "", "warm-start every engine from a donor trained on this device")
		train     = flag.Int("train", 40, "donor training runs per (model, variance state); used with -donor")
		model     = flag.String("model", "MobileNet v3", "model to serve")
		envID     = flag.String("env", autoscale.EnvD2, "environment: S1-S5, D1-D4")
		n         = flag.Int("n", 1000, "total requests")
		clients   = flag.Int("clients", 16, "concurrent clients")
		rate      = flag.Float64("rate", 0, "per-client Poisson request rate per second (0 = closed loop)")
		queue     = flag.Int("queue", 0, "per-device queue depth (0 = gateway default)")
		deadline  = flag.Duration("deadline", 0, "per-request deadline (0 = none)")
		shed      = flag.String("shed", "newest", "shed policy on full queue: newest, oldest")
		failover  = flag.Bool("failover", false, "re-execute QoS misses on the local fallback target")
		snapdir   = flag.String("snapshots", "", "policy checkpoint store directory: warm-start at boot, flush at shutdown")
		sync      = flag.Duration("sync", 0, "background policy sync interval (0 = off; needs -snapshots)")
		faults    = flag.String("faults", "", "JSON fault schedule to inject (see examples/faults/)")
		chaos     = flag.Bool("chaos", false, "seeded chaos storm over the routing tier: generated faults, self-healing supervisor, invariant audit")
		chaosInt  = flag.Float64("chaos-intensity", 0.7, "chaos storm intensity in (0,1]: scales fault density, severity and window width")
		resilient = flag.Bool("resilient", false, "enable circuit breakers and deadline-budgeted offload retries")
		hedge     = flag.Bool("hedge", false, "hedge slow offloads with a local run (needs -resilient)")
		admin     = flag.String("admin", "", "serve the observability endpoint on this address (e.g. :9090)")
		linger    = flag.Duration("linger", 0, "keep the admin endpoint up this long after the load finishes")
		shards    = flag.Int("shards", 1, "gateway shards behind the routing tier (1 = single gateway, no router)")
		replicas  = flag.Int("replicas", 1, "serving lanes per device (lane names device-0, device-1, ...)")
		tenants   = flag.String("tenants", "", "weighted fairness classes, e.g. gold:4,silver:2,best:1 (implies the routing tier)")
		plan      = flag.Bool("plan", false, "run the model-driven capacity planner over the routing tier")
		sloSpec   = flag.String("slo-classes", "", `SLO classes for -plan, "name:target[:weight[:maxqueue]],..." (default gold/silver/best)`)
		traceRate = flag.Float64("trace-sample", 0, "causal-trace head-sampling rate in [0,1]; sheds/misses/failovers are always kept (0 = tracing off)")
		flightDir = flag.String("flight-recorder", "", "incident flight-recorder directory: control-plane events + kept traces bundled on supervisor remediation (needs -trace-sample)")
		seed      = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	if err := run(config{
		devices: strings.Split(*devices, ","), donor: *donor, train: *train,
		model: *model, envID: *envID, n: *n, clients: *clients, rate: *rate,
		queue: *queue, deadline: *deadline, shed: *shed, failover: *failover,
		snapdir: *snapdir, sync: *sync, faults: *faults, chaos: *chaos,
		chaosIntensity: *chaosInt, resilient: *resilient,
		hedge: *hedge, admin: *admin, linger: *linger, shards: *shards,
		replicas: *replicas, tenants: *tenants, plan: *plan, sloClasses: *sloSpec,
		traceSample: *traceRate, flightDir: *flightDir,
		seed: *seed,
	}, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "autoscale-serve:", err)
		os.Exit(1)
	}
}

type config struct {
	devices        []string
	donor          string
	train          int
	model, envID   string
	n, clients     int
	rate           float64
	queue          int
	deadline       time.Duration
	shed           string
	failover       bool
	snapdir        string
	sync           time.Duration
	faults         string
	chaos          bool
	chaosIntensity float64
	resilient      bool
	hedge          bool
	admin          string
	linger         time.Duration
	shards         int
	replicas       int
	tenants        string
	plan           bool
	sloClasses     string
	traceSample    float64
	flightDir      string
	seed           int64
}

// chaosHorizonS is the virtual span the generated storm fits inside — small
// enough that a default-sized load drives every lane's clock past it, so the
// fleet gets storm-free time to settle before the final audit.
const chaosHorizonS = 6.0

// chaosRig bundles the chaos-mode control plane the flood loop drives: the
// supervisor ticking on virtual time, the invariant auditor, and the atomic
// clock the checkpoint fault sink reads (it must never query the router
// directly — see PolicyFaultSink.Now).
type chaosRig struct {
	rt    *autoscale.Router
	sup   *autoscale.Supervisor
	aud   *autoscale.ChaosAuditor
	clock atomic.Uint64 // float64 bits of the newest virtual time seen
}

// observe advances the rig after one response: bump the atomic clock to the
// router's virtual now, run a supervision pass if the interval elapsed, and
// audit clock monotonicity on every pass.
func (cr *chaosRig) observe() {
	now := cr.rt.VirtualNow()
	for {
		old := cr.clock.Load()
		if math.Float64frombits(old) >= now || cr.clock.CompareAndSwap(old, math.Float64bits(now)) {
			break
		}
	}
	if cr.sup.MaybeTick(now) {
		cr.aud.Observe()
	}
}

// now is the checkpoint fault sink's clock.
func (cr *chaosRig) now() float64 { return math.Float64frombits(cr.clock.Load()) }

// printChaos reports the supervision outcome and the invariant audit; any
// violation makes the whole run fail.
func printChaos(out *os.File, rig *chaosRig) error {
	rig.aud.Final()
	st := rig.sup.Status()
	fmt.Fprintf(out, "\nsupervisor (%d passes):\n", st.Ticks)
	for _, sh := range st.Shards {
		line := fmt.Sprintf("  %-10s phase %-8s score %.2f  restarts %d  incarnation %d",
			sh.Name, sh.Phase, sh.Score, sh.Restarts, sh.Incarnation)
		if sh.Reason != "" {
			line += "  (" + sh.Reason + ")"
		}
		fmt.Fprintln(out, line)
	}
	if len(st.Actions) > 0 {
		fmt.Fprintf(out, "remediation log:\n")
		for _, a := range st.Actions {
			fmt.Fprintf(out, "  [%7.2fs] %-10s %-8s %s\n", a.AtS, a.Shard, a.Action, a.Detail)
		}
	}
	viols := rig.aud.Violations()
	if len(viols) > 0 {
		for _, v := range viols {
			fmt.Fprintf(out, "INVARIANT VIOLATION: %s\n", v)
		}
		return fmt.Errorf("chaos audit failed: %d invariant violations", len(viols))
	}
	fmt.Fprintf(out, "chaos audit: all invariants held\n")
	return nil
}

// server is the front door the load generator drives: a single gateway or
// the sharded routing tier.
type server interface {
	Submit(autoscale.Request) (<-chan autoscale.Response, error)
	Do(autoscale.Request) (autoscale.Response, error)
	Devices() []string
	Snapshot() autoscale.GatewayMetrics
	Health() map[string]autoscale.EngineHealth
	StartPolicySync() error
	Shutdown(context.Context) error
}

func run(c config, out *os.File) error {
	if c.clients < 1 {
		return fmt.Errorf("need at least one client, got %d", c.clients)
	}
	gcfg := autoscale.GatewayConfig{QueueDepth: c.queue, FailoverLocal: c.failover}
	switch c.shed {
	case "newest":
		gcfg.Shed = autoscale.ShedNewest
	case "oldest":
		gcfg.Shed = autoscale.ShedOldest
	default:
		return fmt.Errorf("unknown shed policy %q (newest, oldest)", c.shed)
	}
	var store *autoscale.PolicyStore
	if c.snapdir != "" {
		var err error
		store, err = autoscale.OpenPolicyStore(c.snapdir, 0)
		if err != nil {
			return err
		}
		gcfg.Checkpoints = store
		gcfg.PolicySync.Interval = c.sync
	} else if c.sync > 0 {
		return fmt.Errorf("-sync needs -snapshots (the checkpoint store)")
	}
	if c.hedge && !c.resilient {
		return fmt.Errorf("-hedge needs -resilient (the retry/breaker path)")
	}
	if c.resilient {
		gcfg.Resilience = autoscale.ResilienceConfig{Enabled: true, Hedge: c.hedge}
	}
	if c.faults != "" {
		sched, err := autoscale.LoadFaultSchedule(c.faults)
		if err != nil {
			return err
		}
		gcfg.Faults = autoscale.CompileFaultSchedule(sched, c.seed)
	}

	m, err := autoscale.Model(c.model)
	if err != nil {
		return err
	}

	tenantCfg, tenantNames, err := parseTenants(c.tenants)
	if err != nil {
		return err
	}
	var classes []autoscale.SLOClass
	if c.sloClasses != "" && !c.plan {
		return fmt.Errorf("-slo-classes needs -plan (the capacity planner)")
	}
	if c.plan {
		if c.tenants != "" {
			return fmt.Errorf("-plan derives its tenants from -slo-classes; drop -tenants")
		}
		classes = autoscale.DefaultSLOClasses()
		if c.sloClasses != "" {
			if classes, err = autoscale.ParseSLOClasses(c.sloClasses); err != nil {
				return err
			}
		}
		tenantCfg = autoscale.SLOTenants(classes)
		for _, cl := range classes {
			tenantNames = append(tenantNames, cl.Name)
		}
	}
	// Zero means the single-gateway defaults (tests build config directly).
	if c.shards == 0 {
		c.shards = 1
	}
	if c.replicas == 0 {
		c.replicas = 1
	}
	if c.shards < 1 {
		return fmt.Errorf("need at least one shard, got %d", c.shards)
	}
	if c.replicas < 1 {
		return fmt.Errorf("need at least one replica, got %d", c.replicas)
	}

	// Causal tracing: a tracer exists when head sampling is requested or a
	// flight-recorder directory is given (tail-kept traces and control-plane
	// events are worth recording even at sample rate 0).
	var tracer *autoscale.Tracer
	var recorder *autoscale.FlightRecorder
	if c.traceSample < 0 || c.traceSample > 1 {
		return fmt.Errorf("-trace-sample must be in [0,1], got %g", c.traceSample)
	}
	if c.traceSample > 0 || c.flightDir != "" {
		tracer = autoscale.NewTracer(autoscale.TracerConfig{SampleRate: c.traceSample, Seed: c.seed})
		recorder = autoscale.NewFlightRecorder(tracer, c.flightDir, 0, 0)
	}

	var sched *autoscale.FaultSchedule
	var fsink *autoscale.PolicyFaultSink
	if c.chaos {
		if c.faults != "" {
			return fmt.Errorf("-chaos generates its own storm; drop -faults")
		}
		if c.plan {
			return fmt.Errorf("-chaos and -plan are separate control loops; pick one")
		}
		if c.chaosIntensity <= 0 || c.chaosIntensity > 1 {
			return fmt.Errorf("-chaos-intensity must be in (0,1], got %g", c.chaosIntensity)
		}
		if c.shards == 1 && len(tenantCfg) == 0 {
			return fmt.Errorf("-chaos supervises the routing tier; set -shards >= 2 or -tenants")
		}
		_, lanes, _ := laneSpecs(c.devices, c.replicas)
		shardNames := make([]string, c.shards)
		for i := range shardNames {
			shardNames[i] = fmt.Sprintf("shard-%d", i)
		}
		sched = autoscale.RandomFaultSchedule(c.seed, c.chaosIntensity, autoscale.FaultRandomOpts{
			Devices: lanes, Shards: shardNames, HorizonS: chaosHorizonS,
		})
		gcfg.Faults = autoscale.CompileFaultSchedule(sched, c.seed)
		if store != nil {
			// The storm's checkpoint I/O faults need the saves to flow
			// through a fault sink; the raw store stays in scope for the
			// auditor's CRC sweep. Now/Verdict are wired once the rig (and
			// its router-free clock) exists.
			fsink = &autoscale.PolicyFaultSink{Inner: store}
			gcfg.Checkpoints = fsink
		}
	}

	var srv server
	var rt *autoscale.Router
	var pl *autoscale.Planner
	if c.shards > 1 || len(tenantCfg) > 0 {
		// The router starts traces at admission; shard gateways must not
		// also carry a tracer, or requests would double-start.
		rt, err = buildRouter(c, gcfg, tenantCfg, tracer, recorder)
		if err != nil {
			return err
		}
		srv = rt
	} else {
		gcfg.Tracer = tracer
		gcfg.Recorder = recorder
		srv, err = buildGateway(c, gcfg)
		if err != nil {
			return err
		}
	}
	if c.plan {
		pl, err = autoscale.NewPlanner(rt, autoscale.PlannerConfig{Classes: classes, Faults: gcfg.Faults})
		if err != nil {
			return err
		}
	}
	var rig *chaosRig
	if c.chaos {
		sup, err := autoscale.NewSupervisor(rt, autoscale.SupervisorConfig{})
		if err != nil {
			return err
		}
		aud, err := autoscale.NewChaosAuditor(rt, store)
		if err != nil {
			return err
		}
		rig = &chaosRig{rt: rt, sup: sup, aud: aud}
		if fsink != nil {
			// Injected checkpoint-I/O verdicts join the flight ring when a
			// recorder is configured; Note on a nil recorder is a no-op.
			fsink.Events = recorder.Note
			inj := gcfg.Faults
			// The sink's clock must not call back into the router: its
			// queries can fire under the router's lock (re-homing warm
			// starts, drain flushes), so it reads the atomic the flood loop
			// advances instead.
			fsink.Now = rig.now
			fsink.Verdict = func(dev string, tm float64) autoscale.PolicyIOVerdict {
				switch inj.CheckpointIO(dev, tm) {
				case autoscale.FaultIOSlowFsync:
					return autoscale.PolicyIOSlow
				case autoscale.FaultIOWriteFail:
					return autoscale.PolicyIOFailWrite
				case autoscale.FaultIODiskFull:
					return autoscale.PolicyIOFailAll
				}
				return autoscale.PolicyIOHealthy
			}
		}
	}
	if c.sync > 0 {
		if err := srv.StartPolicySync(); err != nil {
			return err
		}
	}
	if c.admin != "" {
		var adm *autoscale.GatewayAdmin
		if pl != nil {
			adm, err = autoscale.ServePlannerAdmin(pl, c.admin)
		} else if rig != nil {
			adm, err = autoscale.ServeSupervisorAdmin(rig.sup, c.admin)
		} else if rt != nil {
			adm, err = autoscale.ServeRouterAdmin(rt, c.admin)
		} else {
			adm, err = autoscale.ServeGatewayAdmin(srv.(*autoscale.Gateway), c.admin)
		}
		if err != nil {
			return err
		}
		defer adm.Close()
		fmt.Fprintf(out, "admin listening on http://%s\n", adm.Addr())
	} else if c.linger > 0 {
		return fmt.Errorf("-linger needs -admin (the observability endpoint)")
	}

	mode := "closed-loop"
	if c.rate > 0 {
		mode = fmt.Sprintf("Poisson %.0f req/s per client", c.rate)
	}
	front := ""
	if rt != nil {
		front = fmt.Sprintf(" over %d shards", c.shards)
		if len(tenantNames) > 0 {
			front += fmt.Sprintf(", tenants %s", strings.Join(tenantNames, "/"))
		}
		if pl != nil {
			front += ", planned capacity"
		}
	}
	fmt.Fprintf(out, "serving %q on %s%s — %d requests, %d clients, %s\n",
		m.Name, strings.Join(srv.Devices(), "+"), front, c.n, c.clients, mode)
	if gcfg.Faults != nil {
		resil := "resilience off"
		if c.resilient {
			resil = "breakers+retries on"
			if c.hedge {
				resil += ", hedging"
			}
		}
		fmt.Fprintf(out, "injecting fault schedule %q (%s)\n", gcfg.Faults.Name(), resil)
	}
	if rig != nil {
		fmt.Fprintf(out, "chaos storm: %d faults, intensity %.2f, horizon %.0fs — supervised, invariants audited\n",
			len(sched.Faults), c.chaosIntensity, chaosHorizonS)
	}
	if tracer != nil {
		line := fmt.Sprintf("causal tracing: sample rate %.2f, tail-keep on shed/miss/failover/hedge", c.traceSample)
		if c.flightDir != "" {
			line += fmt.Sprintf("; flight recorder bundles -> %s", c.flightDir)
		}
		fmt.Fprintln(out, line)
	}

	start := time.Now()
	if err := flood(srv, m, c, tenantNames, pl, gcfg.Faults, rig); err != nil {
		return err
	}
	if c.linger > 0 {
		// Keep the server (and /healthz=200) up for scrapers before the
		// shutdown flips the probe and freezes the counters.
		fmt.Fprintf(out, "load done; lingering %s for scrapes\n", c.linger)
		time.Sleep(c.linger)
	}
	if rig != nil {
		rig.observe() // one last pass before the drain freezes the clocks
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		// Under chaos the final flush may land inside an injected I/O
		// window; the prior generations survive in the raw store, so report
		// the scripted damage and keep auditing.
		if rig == nil || !errors.Is(err, autoscale.ErrPolicyInjectedIO) {
			return err
		}
		fmt.Fprintf(out, "shutdown flush hit injected checkpoint faults (prior generations survive): %v\n", err)
	}
	printSnapshot(out, srv.Snapshot(), time.Since(start))
	if rt != nil {
		printRouter(out, rt)
	}
	if pl != nil {
		printPlan(out, pl)
	}
	printHealth(out, srv.Health())
	if tracer != nil {
		st := tracer.Stats()
		fmt.Fprintf(out, "\ntraces: started %d  kept %d (%d head-sampled, %d dropped)  ring %d/%d\n",
			st.Started, st.Kept, st.Sampled, st.Dropped, st.RingLen, st.RingCap)
		if c.flightDir != "" {
			n, derr := recorder.Dumps()
			if derr != nil {
				return fmt.Errorf("flight recorder: %w", derr)
			}
			fmt.Fprintf(out, "flight recorder: %d events in ring, %d incident bundles in %s\n",
				len(recorder.Events()), n, c.flightDir)
		}
	}
	if rig != nil {
		return printChaos(out, rig)
	}
	return nil
}

// parseTenants decodes "gold:4,silver:2,best:1" (weight defaults to 1).
func parseTenants(s string) ([]autoscale.RouterTenant, []string, error) {
	if s == "" {
		return nil, nil, nil
	}
	var cfg []autoscale.RouterTenant
	var names []string
	for _, part := range strings.Split(s, ",") {
		name, weight := part, 1
		if i := strings.IndexByte(part, ':'); i >= 0 {
			name = part[:i]
			w, err := strconv.Atoi(part[i+1:])
			if err != nil || w < 1 {
				return nil, nil, fmt.Errorf("bad tenant weight in %q (want name:weight, weight >= 1)", part)
			}
			weight = w
		}
		if name == "" {
			return nil, nil, fmt.Errorf("empty tenant name in %q", s)
		}
		cfg = append(cfg, autoscale.RouterTenant{Name: name, Weight: weight})
		names = append(names, name)
	}
	return cfg, names, nil
}

// printHealth summarizes each engine's learning state: how much of the state
// space the policy has seen, how settled the Q-table is (TD-error EMA), and
// what the recent rewards look like.
func printHealth(out *os.File, health map[string]autoscale.EngineHealth) {
	if len(health) == 0 {
		return
	}
	fmt.Fprintf(out, "\nlearning health:\n")
	devs := make([]string, 0, len(health))
	for d := range health {
		devs = append(devs, d)
	}
	sort.Strings(devs)
	for _, dev := range devs {
		h := health[dev]
		fmt.Fprintf(out, "  %-12s eps %.2f  coverage %5.1f%% (%d/%d states)  explore %4.1f%%  tdEMA %.3f  meanR %7.2f  entropy %.2f\n",
			dev, h.Epsilon, 100*h.Coverage, h.States, h.StateSpaceSize,
			100*h.ExplorationRatio, h.TDErrorEMA, h.MeanReward, h.VisitEntropy)
	}
}

func buildGateway(c config, gcfg autoscale.GatewayConfig) (*autoscale.Gateway, error) {
	ecfg := autoscale.DefaultEngineConfig()
	if c.donor != "" {
		fleet, err := autoscale.NewFleet(c.donor, ecfg, c.train, c.seed)
		if err != nil {
			return nil, err
		}
		return fleet.ProvisionGateway(c.devices, ecfg, gcfg, c.seed)
	}
	// Cold engines: learn online under the load itself.
	backends := make([]autoscale.GatewayBackend, 0, len(c.devices))
	for i, device := range c.devices {
		world, err := autoscale.NewWorld(device, c.seed+int64(i))
		if err != nil {
			return nil, err
		}
		engine, err := autoscale.NewEngine(world, ecfg)
		if err != nil {
			return nil, err
		}
		backends = append(backends, autoscale.GatewayBackend{Device: device, Engine: engine})
	}
	return autoscale.NewGateway(backends, gcfg)
}

// laneSpecs expands the device list by -replicas: each device D becomes
// lanes D-0..D-(r-1) backed by D's hardware ("D-0=D" specs). With one
// replica the plain names pass through.
func laneSpecs(devices []string, replicas int) (specs, lanes []string, hw map[string]string) {
	hw = make(map[string]string)
	for _, device := range devices {
		if replicas == 1 {
			specs = append(specs, device)
			lanes = append(lanes, device)
			hw[device] = device
			continue
		}
		for r := 0; r < replicas; r++ {
			lane := fmt.Sprintf("%s-%d", device, r)
			specs = append(specs, lane+"="+device)
			lanes = append(lanes, lane)
			hw[lane] = device
		}
	}
	return specs, lanes, hw
}

// buildRouter stands up the sharded routing tier: donor-warm-started lanes
// via Fleet.ProvisionRouter, or cold lanes round-robined over the shards.
func buildRouter(c config, gcfg autoscale.GatewayConfig, tenants []autoscale.RouterTenant, tr *autoscale.Tracer, rec *autoscale.FlightRecorder) (*autoscale.Router, error) {
	ecfg := autoscale.DefaultEngineConfig()
	specs, lanes, hw := laneSpecs(c.devices, c.replicas)
	rcfg := autoscale.RouterConfig{Tenants: tenants, Shed: gcfg.Shed, Tracer: tr, Recorder: rec}
	if c.donor != "" {
		fleet, err := autoscale.NewFleet(c.donor, ecfg, c.train, c.seed)
		if err != nil {
			return nil, err
		}
		return fleet.ProvisionRouter(specs, c.shards, ecfg, gcfg, rcfg, c.seed)
	}

	// Cold engines, round-robin placement: a load test without a donor just
	// needs the lanes spread, not the full placement machinery.
	if len(lanes) < c.shards {
		return nil, fmt.Errorf("%d lanes cannot populate %d shards (raise -replicas)", len(lanes), c.shards)
	}
	seeds := make(map[string]int64, len(lanes))
	coldEngine := func(lane string) (*autoscale.Engine, error) {
		world, err := autoscale.NewWorld(hw[lane], seeds[lane])
		if err != nil {
			return nil, err
		}
		return autoscale.NewEngine(world, ecfg)
	}
	backends := make([][]autoscale.GatewayBackend, c.shards)
	for i, lane := range lanes {
		seeds[lane] = c.seed + int64(i)
		engine, err := coldEngine(lane)
		if err != nil {
			return nil, err
		}
		backends[i%c.shards] = append(backends[i%c.shards], autoscale.GatewayBackend{Device: lane, Engine: engine})
	}
	shards := make([]autoscale.RouterShard, 0, c.shards)
	for i, bs := range backends {
		shardCfg := gcfg
		shardCfg.Name = fmt.Sprintf("shard-%d", i)
		gw, err := autoscale.NewGateway(bs, shardCfg)
		if err != nil {
			return nil, err
		}
		shards = append(shards, autoscale.RouterShard{Name: shardCfg.Name, Gateway: gw})
	}
	rcfg.EngineFactory = coldEngine
	rcfg.Checkpoints = gcfg.Checkpoints
	rcfg.Faults = gcfg.Faults
	rcfg.PolicySync = gcfg.PolicySync
	// Restart path for the supervisor: rebuild a dead shard's lanes on cold
	// engines (warm-started from checkpoints when a store is configured).
	rcfg.ShardFactory = func(name string, devs []string) (*autoscale.Gateway, error) {
		backends := make([]autoscale.GatewayBackend, 0, len(devs))
		for _, lane := range devs {
			engine, err := coldEngine(lane)
			if err != nil {
				return nil, err
			}
			backends = append(backends, autoscale.GatewayBackend{Device: lane, Engine: engine})
		}
		shardCfg := gcfg
		shardCfg.Name = name
		return autoscale.NewGateway(backends, shardCfg)
	}
	return autoscale.NewRouter(shards, rcfg)
}

// flood drives the server from c.clients goroutines, each with its own
// environment stream, and waits for every response. With fairness classes
// configured, each client cycles its requests through the tenant names. With
// the planner on, each client also stamps requests with a virtual arrival
// clock — exponential gaps at the -rate (or 100 req/s per client by
// default), compressed by any scheduled load surge — and drives the
// planner's tick from it, so capacity decisions replay under a fixed seed.
func flood(srv server, m *autoscale.DNNModel, c config, tenantNames []string, pl *autoscale.Planner, inj *autoscale.FaultInjector, rig *chaosRig) error {
	per := c.n / c.clients
	extra := c.n % c.clients
	errs := make(chan error, c.clients)
	var wg sync.WaitGroup
	for cl := 0; cl < c.clients; cl++ {
		count := per
		if cl < extra {
			count++
		}
		wg.Add(1)
		go func(cl, count int) {
			defer wg.Done()
			env, err := autoscale.NewEnvironment(c.envID, c.seed+int64(cl))
			if err != nil {
				errs <- err
				return
			}
			rng := rand.New(rand.NewSource(c.seed + int64(cl)))
			pending := make([]<-chan autoscale.Response, 0, count)
			// Virtual arrival rate per client: -rate when set, else 100
			// req/s total split across the clients.
			vrate := c.rate
			if vrate <= 0 {
				vrate = 100 / float64(c.clients)
			}
			arrival := 0.0
			for i := 0; i < count; i++ {
				if c.rate > 0 {
					time.Sleep(time.Duration(rng.ExpFloat64() / c.rate * float64(time.Second)))
				}
				req := autoscale.Request{Model: m, Conditions: env.Sample()}
				if pl != nil {
					arrival += rng.ExpFloat64() / (vrate * inj.SurgeFactor(arrival))
					req.ArrivalS = arrival
					pl.MaybeTick(arrival)
				}
				if len(tenantNames) > 0 {
					req.Tenant = tenantNames[(cl+i)%len(tenantNames)]
				}
				if c.deadline > 0 {
					req.Deadline = time.Now().Add(c.deadline)
				}
				if c.rate > 0 {
					// Open loop: fire and collect later.
					ch, err := srv.Submit(req)
					if err != nil {
						errs <- err
						return
					}
					pending = append(pending, ch)
					continue
				}
				if _, err := srv.Do(req); err != nil &&
					err != autoscale.ErrQueueFull && err != autoscale.ErrDeadlineExpired {
					errs <- err
					return
				}
				if rig != nil {
					rig.observe()
				}
			}
			for _, ch := range pending {
				<-ch
				if rig != nil {
					rig.observe()
				}
			}
		}(cl, count)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// printRouter summarizes the routing tier: its own counters, per-shard
// lifecycle rows and the tenant fairness queues.
func printRouter(out *os.File, rt *autoscale.Router) {
	rm := rt.RouterMetrics()
	fmt.Fprintf(out, "\nrouter: dispatched %d  shed %d  failed %d  failovers %d  rehomed %d  kills %d  drains %d\n",
		rm.Dispatched, rm.Shed, rm.Failed, rm.Failovers, rm.RehomedDevices, rm.ShardKills, rm.ShardDrains)
	for _, s := range rt.ShardStatuses() {
		fmt.Fprintf(out, "  %-10s %-9s served %6d  shed %4d  failed %4d  lanes %s\n",
			s.Name, s.State, s.Served, s.Shed, s.Failed, strings.Join(s.Devices, ","))
	}
	for _, t := range rt.TenantQueues() {
		if t.Admitted == 0 && t.Shed == 0 {
			continue
		}
		fmt.Fprintf(out, "  tenant %-8s weight %d  admitted %6d  shed %4d\n",
			t.Tenant, t.Weight, t.Admitted, t.Shed)
	}
}

// printPlan summarizes the capacity planner: the last applied decision and
// each SLO class's attainment — target p95 against the achieved p95 virtual
// response time.
func printPlan(out *os.File, pl *autoscale.Planner) {
	st := pl.Status()
	d := st.Decision
	fmt.Fprintf(out, "\nplan: generation %d  lanes %d/%d  budget %d  est %.1f req/s x surge %.1f  service %.1fms\n",
		d.Generation, d.ActiveLanes, d.TotalLanes, d.Budget, d.TotalRateHz, d.SurgeFactor, d.ServiceS*1e3)
	if d.Generation > 0 && !d.Held {
		wait := "unstable"
		if d.PredictedWaitS >= 0 {
			wait = fmt.Sprintf("%.1fms", d.PredictedWaitS*1e3)
		}
		fmt.Fprintf(out, "  model: predicted wait %s  occupancy %.2f predicted / %.2f measured  (calibration error %.0f%%)\n",
			wait, d.PredictedOccupancy, d.MeasuredOccupancy, 100*d.CalibrationError)
	}
	for _, cs := range st.Classes {
		verdict := "MISSED"
		if cs.Attained {
			verdict = "ok"
		}
		achieved := "(unmeasured)"
		if cs.AchievedP95S > 0 {
			achieved = fmt.Sprintf("%.1fms", cs.AchievedP95S*1e3)
		}
		fmt.Fprintf(out, "  slo %-8s target p95 %6.0fms  achieved %-12s %-6s  admitted %6d  shed %4d\n",
			cs.Name, cs.TargetP95S*1e3, achieved, verdict, cs.Admitted, cs.Shed)
	}
}

func printSnapshot(out *os.File, s autoscale.GatewayMetrics, wall time.Duration) {
	fmt.Fprintf(out, "\n%-14s %8d   (%.0f req/s wall)\n", "submitted", s.Submitted,
		float64(s.Submitted)/wall.Seconds())
	fmt.Fprintf(out, "%-14s %8d\n", "served", s.Served)
	fmt.Fprintf(out, "%-14s %8d\n", "shed", s.Shed)
	fmt.Fprintf(out, "%-14s %8d\n", "expired", s.Expired)
	fmt.Fprintf(out, "%-14s %8d\n", "failed", s.Failed)
	fmt.Fprintf(out, "%-14s %8d\n", "retried", s.Retried)
	fmt.Fprintf(out, "%-14s %8d\n", "outages", s.Outages)
	fmt.Fprintf(out, "%-14s %8d\n", "QoS misses", s.QoSViolations)
	fmt.Fprintf(out, "%-14s %8d\n", "queue max", s.QueueMaxDepth)
	if s.OutageWastedJ > 0 {
		fmt.Fprintf(out, "%-14s %8.2f J\n", "outage waste", s.OutageWastedJ)
	}
	if s.OffloadRetries > 0 || s.RetriesAbandoned > 0 {
		fmt.Fprintf(out, "%-14s %8d   (%d recovered, %d abandoned)\n",
			"offload retry", s.OffloadRetries, s.RetriesRecovered, s.RetriesAbandoned)
	}
	if s.Hedges > 0 {
		fmt.Fprintf(out, "%-14s %8d   (%d won, %d lost)\n",
			"hedges", s.Hedges, s.HedgesWon, s.HedgesLost)
	}
	if s.BreakerOpens > 0 {
		fmt.Fprintf(out, "%-14s %8d   (%d half-open, %d closed, %.1fs degraded)\n",
			"breaker trips", s.BreakerOpens, s.BreakerHalfOpens, s.BreakerCloses, s.DegradedSeconds)
	}
	if s.WorkerCrashes > 0 || s.CorruptDrills > 0 {
		fmt.Fprintf(out, "%-14s %8d   (%d corrupt drills)\n", "crashes", s.WorkerCrashes, s.CorruptDrills)
	}
	if len(s.ByBreaker) > 0 {
		fmt.Fprintf(out, "breakers:")
		for _, label := range sortedStrKeys(s.ByBreaker) {
			fmt.Fprintf(out, "  %s=%s", label, s.ByBreaker[label])
		}
		fmt.Fprintln(out)
	}
	if s.Served > 0 {
		fmt.Fprintf(out, "\nlatency  mean %6.1f ms   p50 %s   p99 %s\n",
			s.Latency.Mean()*1e3, quantileMS(s.Latency, 0.5), quantileMS(s.Latency, 0.99))
		fmt.Fprintf(out, "wait     mean %6.2f ms   p99 %s\n",
			s.Wait.Mean()*1e3, quantileMS(s.Wait, 0.99))
		fmt.Fprintf(out, "energy   mean %6.1f mJ   total %.1f J\n",
			s.Energy.Mean()*1e3, s.Energy.Sum)
	}
	if len(s.ByTarget) > 0 {
		fmt.Fprintf(out, "\ndecisions:")
		for _, loc := range sortedKeys(s.ByTarget) {
			fmt.Fprintf(out, "  %s %.1f%%", loc, 100*float64(s.ByTarget[loc])/float64(s.Served))
		}
		fmt.Fprintln(out)
	}
	if len(s.ByDevice) > 0 {
		fmt.Fprintf(out, "per device:")
		for _, dev := range sortedKeys(s.ByDevice) {
			fmt.Fprintf(out, "  %s %d", dev, s.ByDevice[dev])
		}
		fmt.Fprintln(out)
	}
}

// quantileMS renders a histogram quantile, which is a bucket upper bound and
// may be +Inf when the quantile lands in the overflow bucket.
func quantileMS(h interface{ Quantile(float64) float64 }, q float64) string {
	v := h.Quantile(q)
	if math.IsInf(v, 1) {
		return ">max"
	}
	return fmt.Sprintf("<=%.1fms", v*1e3)
}

func sortedKeys(m map[string]int64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedStrKeys(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
