// Command autoscale-serve load-tests the fleet-serving gateway: it
// provisions one engine per device (optionally warm-started from a trained
// donor), floods them with inference requests from concurrent clients —
// closed-loop or Poisson open-loop — and prints the gateway's metrics
// snapshot: served/shed/expired counts, latency and energy distributions,
// queue high watermark and the decision breakdown.
//
// Usage:
//
//	autoscale-serve -devices Mi8Pro,GalaxyS10e -clients 16 -n 2000
//	autoscale-serve -devices MotoXForce -rate 200 -deadline 50ms -shed oldest
//	autoscale-serve -donor Mi8Pro -train 60 -devices GalaxyS10e,MotoXForce
//	autoscale-serve -faults examples/faults/storm.json -resilient -hedge
//	autoscale-serve -admin :9090 -linger 30s   # scrape /metrics while it runs
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"autoscale"
)

func main() {
	var (
		devices   = flag.String("devices", "Mi8Pro,GalaxyS10e", "comma-separated device fleet")
		donor     = flag.String("donor", "", "warm-start every engine from a donor trained on this device")
		train     = flag.Int("train", 40, "donor training runs per (model, variance state); used with -donor")
		model     = flag.String("model", "MobileNet v3", "model to serve")
		envID     = flag.String("env", autoscale.EnvD2, "environment: S1-S5, D1-D4")
		n         = flag.Int("n", 1000, "total requests")
		clients   = flag.Int("clients", 16, "concurrent clients")
		rate      = flag.Float64("rate", 0, "per-client Poisson request rate per second (0 = closed loop)")
		queue     = flag.Int("queue", 0, "per-device queue depth (0 = gateway default)")
		deadline  = flag.Duration("deadline", 0, "per-request deadline (0 = none)")
		shed      = flag.String("shed", "newest", "shed policy on full queue: newest, oldest")
		failover  = flag.Bool("failover", false, "re-execute QoS misses on the local fallback target")
		snapdir   = flag.String("snapshots", "", "policy checkpoint store directory: warm-start at boot, flush at shutdown")
		sync      = flag.Duration("sync", 0, "background policy sync interval (0 = off; needs -snapshots)")
		faults    = flag.String("faults", "", "JSON fault schedule to inject (see examples/faults/)")
		resilient = flag.Bool("resilient", false, "enable circuit breakers and deadline-budgeted offload retries")
		hedge     = flag.Bool("hedge", false, "hedge slow offloads with a local run (needs -resilient)")
		admin     = flag.String("admin", "", "serve the observability endpoint on this address (e.g. :9090)")
		linger    = flag.Duration("linger", 0, "keep the admin endpoint up this long after the load finishes")
		seed      = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	if err := run(config{
		devices: strings.Split(*devices, ","), donor: *donor, train: *train,
		model: *model, envID: *envID, n: *n, clients: *clients, rate: *rate,
		queue: *queue, deadline: *deadline, shed: *shed, failover: *failover,
		snapdir: *snapdir, sync: *sync, faults: *faults, resilient: *resilient,
		hedge: *hedge, admin: *admin, linger: *linger, seed: *seed,
	}, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "autoscale-serve:", err)
		os.Exit(1)
	}
}

type config struct {
	devices      []string
	donor        string
	train        int
	model, envID string
	n, clients   int
	rate         float64
	queue        int
	deadline     time.Duration
	shed         string
	failover     bool
	snapdir      string
	sync         time.Duration
	faults       string
	resilient    bool
	hedge        bool
	admin        string
	linger       time.Duration
	seed         int64
}

func run(c config, out *os.File) error {
	if c.clients < 1 {
		return fmt.Errorf("need at least one client, got %d", c.clients)
	}
	gcfg := autoscale.GatewayConfig{QueueDepth: c.queue, FailoverLocal: c.failover}
	switch c.shed {
	case "newest":
		gcfg.Shed = autoscale.ShedNewest
	case "oldest":
		gcfg.Shed = autoscale.ShedOldest
	default:
		return fmt.Errorf("unknown shed policy %q (newest, oldest)", c.shed)
	}
	if c.snapdir != "" {
		store, err := autoscale.OpenPolicyStore(c.snapdir, 0)
		if err != nil {
			return err
		}
		gcfg.Checkpoints = store
		gcfg.PolicySync.Interval = c.sync
	} else if c.sync > 0 {
		return fmt.Errorf("-sync needs -snapshots (the checkpoint store)")
	}
	if c.hedge && !c.resilient {
		return fmt.Errorf("-hedge needs -resilient (the retry/breaker path)")
	}
	if c.resilient {
		gcfg.Resilience = autoscale.ResilienceConfig{Enabled: true, Hedge: c.hedge}
	}
	if c.faults != "" {
		sched, err := autoscale.LoadFaultSchedule(c.faults)
		if err != nil {
			return err
		}
		gcfg.Faults = autoscale.CompileFaultSchedule(sched, c.seed)
	}

	m, err := autoscale.Model(c.model)
	if err != nil {
		return err
	}

	gw, err := buildGateway(c, gcfg)
	if err != nil {
		return err
	}
	if c.sync > 0 {
		if err := gw.StartPolicySync(); err != nil {
			return err
		}
	}
	if c.admin != "" {
		adm, err := autoscale.ServeGatewayAdmin(gw, c.admin)
		if err != nil {
			return err
		}
		defer adm.Close()
		fmt.Fprintf(out, "admin listening on http://%s\n", adm.Addr())
	} else if c.linger > 0 {
		return fmt.Errorf("-linger needs -admin (the observability endpoint)")
	}

	mode := "closed-loop"
	if c.rate > 0 {
		mode = fmt.Sprintf("Poisson %.0f req/s per client", c.rate)
	}
	fmt.Fprintf(out, "serving %q on %s — %d requests, %d clients, %s\n",
		m.Name, strings.Join(gw.Devices(), "+"), c.n, c.clients, mode)
	if gcfg.Faults != nil {
		resil := "resilience off"
		if c.resilient {
			resil = "breakers+retries on"
			if c.hedge {
				resil += ", hedging"
			}
		}
		fmt.Fprintf(out, "injecting fault schedule %q (%s)\n", gcfg.Faults.Name(), resil)
	}

	start := time.Now()
	if err := flood(gw, m, c); err != nil {
		return err
	}
	if c.linger > 0 {
		// Keep the gateway (and /healthz=200) up for scrapers before the
		// shutdown flips the probe and freezes the counters.
		fmt.Fprintf(out, "load done; lingering %s for scrapes\n", c.linger)
		time.Sleep(c.linger)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := gw.Shutdown(ctx); err != nil {
		return err
	}
	printSnapshot(out, gw.Snapshot(), time.Since(start))
	printHealth(out, gw.Health())
	return nil
}

// printHealth summarizes each engine's learning state: how much of the state
// space the policy has seen, how settled the Q-table is (TD-error EMA), and
// what the recent rewards look like.
func printHealth(out *os.File, health map[string]autoscale.EngineHealth) {
	if len(health) == 0 {
		return
	}
	fmt.Fprintf(out, "\nlearning health:\n")
	devs := make([]string, 0, len(health))
	for d := range health {
		devs = append(devs, d)
	}
	sort.Strings(devs)
	for _, dev := range devs {
		h := health[dev]
		fmt.Fprintf(out, "  %-12s eps %.2f  coverage %5.1f%% (%d/%d states)  explore %4.1f%%  tdEMA %.3f  meanR %7.2f  entropy %.2f\n",
			dev, h.Epsilon, 100*h.Coverage, h.States, h.StateSpaceSize,
			100*h.ExplorationRatio, h.TDErrorEMA, h.MeanReward, h.VisitEntropy)
	}
}

func buildGateway(c config, gcfg autoscale.GatewayConfig) (*autoscale.Gateway, error) {
	ecfg := autoscale.DefaultEngineConfig()
	if c.donor != "" {
		fleet, err := autoscale.NewFleet(c.donor, ecfg, c.train, c.seed)
		if err != nil {
			return nil, err
		}
		return fleet.ProvisionGateway(c.devices, ecfg, gcfg, c.seed)
	}
	// Cold engines: learn online under the load itself.
	backends := make([]autoscale.GatewayBackend, 0, len(c.devices))
	for i, device := range c.devices {
		world, err := autoscale.NewWorld(device, c.seed+int64(i))
		if err != nil {
			return nil, err
		}
		engine, err := autoscale.NewEngine(world, ecfg)
		if err != nil {
			return nil, err
		}
		backends = append(backends, autoscale.GatewayBackend{Device: device, Engine: engine})
	}
	return autoscale.NewGateway(backends, gcfg)
}

// flood drives the gateway from c.clients goroutines, each with its own
// environment stream, and waits for every response.
func flood(gw *autoscale.Gateway, m *autoscale.DNNModel, c config) error {
	per := c.n / c.clients
	extra := c.n % c.clients
	errs := make(chan error, c.clients)
	var wg sync.WaitGroup
	for cl := 0; cl < c.clients; cl++ {
		count := per
		if cl < extra {
			count++
		}
		wg.Add(1)
		go func(cl, count int) {
			defer wg.Done()
			env, err := autoscale.NewEnvironment(c.envID, c.seed+int64(cl))
			if err != nil {
				errs <- err
				return
			}
			rng := rand.New(rand.NewSource(c.seed + int64(cl)))
			pending := make([]<-chan autoscale.Response, 0, count)
			for i := 0; i < count; i++ {
				if c.rate > 0 {
					time.Sleep(time.Duration(rng.ExpFloat64() / c.rate * float64(time.Second)))
				}
				req := autoscale.Request{Model: m, Conditions: env.Sample()}
				if c.deadline > 0 {
					req.Deadline = time.Now().Add(c.deadline)
				}
				if c.rate > 0 {
					// Open loop: fire and collect later.
					ch, err := gw.Submit(req)
					if err != nil {
						errs <- err
						return
					}
					pending = append(pending, ch)
					continue
				}
				if _, err := gw.Do(req); err != nil &&
					err != autoscale.ErrQueueFull && err != autoscale.ErrDeadlineExpired {
					errs <- err
					return
				}
			}
			for _, ch := range pending {
				<-ch
			}
		}(cl, count)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func printSnapshot(out *os.File, s autoscale.GatewayMetrics, wall time.Duration) {
	fmt.Fprintf(out, "\n%-14s %8d   (%.0f req/s wall)\n", "submitted", s.Submitted,
		float64(s.Submitted)/wall.Seconds())
	fmt.Fprintf(out, "%-14s %8d\n", "served", s.Served)
	fmt.Fprintf(out, "%-14s %8d\n", "shed", s.Shed)
	fmt.Fprintf(out, "%-14s %8d\n", "expired", s.Expired)
	fmt.Fprintf(out, "%-14s %8d\n", "failed", s.Failed)
	fmt.Fprintf(out, "%-14s %8d\n", "retried", s.Retried)
	fmt.Fprintf(out, "%-14s %8d\n", "outages", s.Outages)
	fmt.Fprintf(out, "%-14s %8d\n", "QoS misses", s.QoSViolations)
	fmt.Fprintf(out, "%-14s %8d\n", "queue max", s.QueueMaxDepth)
	if s.OutageWastedJ > 0 {
		fmt.Fprintf(out, "%-14s %8.2f J\n", "outage waste", s.OutageWastedJ)
	}
	if s.OffloadRetries > 0 || s.RetriesAbandoned > 0 {
		fmt.Fprintf(out, "%-14s %8d   (%d recovered, %d abandoned)\n",
			"offload retry", s.OffloadRetries, s.RetriesRecovered, s.RetriesAbandoned)
	}
	if s.Hedges > 0 {
		fmt.Fprintf(out, "%-14s %8d   (%d won, %d lost)\n",
			"hedges", s.Hedges, s.HedgesWon, s.HedgesLost)
	}
	if s.BreakerOpens > 0 {
		fmt.Fprintf(out, "%-14s %8d   (%d half-open, %d closed, %.1fs degraded)\n",
			"breaker trips", s.BreakerOpens, s.BreakerHalfOpens, s.BreakerCloses, s.DegradedSeconds)
	}
	if s.WorkerCrashes > 0 || s.CorruptDrills > 0 {
		fmt.Fprintf(out, "%-14s %8d   (%d corrupt drills)\n", "crashes", s.WorkerCrashes, s.CorruptDrills)
	}
	if len(s.ByBreaker) > 0 {
		fmt.Fprintf(out, "breakers:")
		for _, label := range sortedStrKeys(s.ByBreaker) {
			fmt.Fprintf(out, "  %s=%s", label, s.ByBreaker[label])
		}
		fmt.Fprintln(out)
	}
	if s.Served > 0 {
		fmt.Fprintf(out, "\nlatency  mean %6.1f ms   p50 %s   p99 %s\n",
			s.Latency.Mean()*1e3, quantileMS(s.Latency, 0.5), quantileMS(s.Latency, 0.99))
		fmt.Fprintf(out, "wait     mean %6.2f ms   p99 %s\n",
			s.Wait.Mean()*1e3, quantileMS(s.Wait, 0.99))
		fmt.Fprintf(out, "energy   mean %6.1f mJ   total %.1f J\n",
			s.Energy.Mean()*1e3, s.Energy.Sum)
	}
	if len(s.ByTarget) > 0 {
		fmt.Fprintf(out, "\ndecisions:")
		for _, loc := range sortedKeys(s.ByTarget) {
			fmt.Fprintf(out, "  %s %.1f%%", loc, 100*float64(s.ByTarget[loc])/float64(s.Served))
		}
		fmt.Fprintln(out)
	}
	if len(s.ByDevice) > 0 {
		fmt.Fprintf(out, "per device:")
		for _, dev := range sortedKeys(s.ByDevice) {
			fmt.Fprintf(out, "  %s %d", dev, s.ByDevice[dev])
		}
		fmt.Fprintln(out)
	}
}

// quantileMS renders a histogram quantile, which is a bucket upper bound and
// may be +Inf when the quantile lands in the overflow bucket.
func quantileMS(h interface{ Quantile(float64) float64 }, q float64) string {
	v := h.Quantile(q)
	if math.IsInf(v, 1) {
		return ">max"
	}
	return fmt.Sprintf("<=%.1fms", v*1e3)
}

func sortedKeys(m map[string]int64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedStrKeys(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
