// Command benchjson converts `go test -bench` text output into a compact
// JSON summary so benchmark results can be archived and diffed. Repeated
// runs of the same benchmark (-count=N) are averaged.
//
// Usage:
//
//	go test -bench=. -benchmem -count=3 . > bench.txt
//	benchjson -in bench.txt -out BENCH_exp.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark, averaged over its repeated runs.
type Result struct {
	Name        string  `json:"name"`
	Runs        int     `json:"runs"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

func main() {
	var (
		in  = flag.String("in", "-", "benchmark text input ('-' = stdin)")
		out = flag.String("out", "-", "JSON output path ('-' = stdout)")
	)
	flag.Parse()

	var r io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	results, err := parse(r)
	if err != nil {
		fatal(err)
	}
	if len(results) == 0 {
		fatal(fmt.Errorf("no benchmark lines found"))
	}
	buf, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		fatal(err)
	}
	buf = append(buf, '\n')
	if *out == "-" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatal(err)
	}
}

// parse reads `go test -bench` output and averages the metric lines per
// benchmark name. Lines that are not benchmark results (PASS, ok, headers)
// are skipped.
func parse(r io.Reader) ([]Result, error) {
	acc := map[string]*Result{}
	var order []string
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		// Strip the -GOMAXPROCS suffix so counts merge across machines.
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		res := acc[name]
		if res == nil {
			res = &Result{Name: name}
			acc[name] = res
			order = append(order, name)
		}
		// fields: name, iterations, then (value, unit) pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad value %q in %q", fields[i], sc.Text())
			}
			switch fields[i+1] {
			case "ns/op":
				res.NsPerOp += v
			case "B/op":
				res.BytesPerOp += v
			case "allocs/op":
				res.AllocsPerOp += v
			}
		}
		res.Runs++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.Strings(order)
	out := make([]Result, 0, len(order))
	for _, name := range order {
		res := acc[name]
		n := float64(res.Runs)
		res.NsPerOp /= n
		res.BytesPerOp /= n
		res.AllocsPerOp /= n
		out = append(out, *res)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
	os.Exit(1)
}
