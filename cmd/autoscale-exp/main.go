// Command autoscale-exp regenerates the paper's tables and figures on the
// simulated edge-cloud testbed.
//
// Usage:
//
//	autoscale-exp -exp fig9            # one experiment at full fidelity
//	autoscale-exp -exp all -quick      # every experiment, reduced fidelity
//	autoscale-exp -list                # list experiment IDs
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"autoscale"
)

func main() {
	var (
		expID = flag.String("exp", "all", "experiment ID (e.g. fig9, tableIII) or 'all'")
		quick = flag.Bool("quick", false, "reduced-fidelity run for smoke testing")
		seed  = flag.Int64("seed", 42, "random seed")
		runs  = flag.Int("runs", 0, "override measured inferences per cell (0 = default)")
		train = flag.Int("train", 0, "override training runs per state (0 = default)")
		list  = flag.Bool("list", false, "list experiment IDs and exit")
		csvTo = flag.String("csv", "", "also write each experiment as <dir>/<id>.csv")
	)
	flag.Parse()

	if *list {
		for _, id := range autoscale.Experiments() {
			fmt.Println(id)
		}
		return
	}

	opts := autoscale.ExperimentOptions{Seed: *seed}
	if *quick {
		opts = autoscale.QuickOptions(*seed)
	}
	if *runs > 0 {
		opts.Runs = *runs
	}
	if *train > 0 {
		opts.TrainRuns = *train
	}

	ids := []string{*expID}
	if *expID == "all" {
		ids = autoscale.Experiments()
	}
	for _, id := range ids {
		start := time.Now()
		table, err := autoscale.RunExperiment(id, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "autoscale-exp: %s: %v\n", id, err)
			os.Exit(1)
		}
		table.Fprint(os.Stdout)
		if *csvTo != "" {
			path := filepath.Join(*csvTo, id+".csv")
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "autoscale-exp: %v\n", err)
				os.Exit(1)
			}
			if err := table.WriteCSV(f); err != nil {
				fmt.Fprintf(os.Stderr, "autoscale-exp: %v\n", err)
				os.Exit(1)
			}
			f.Close()
		}
		fmt.Printf("(%s in %.1fs)\n\n", id, time.Since(start).Seconds())
	}
}
