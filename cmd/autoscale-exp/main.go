// Command autoscale-exp regenerates the paper's tables and figures on the
// simulated edge-cloud testbed.
//
// Usage:
//
//	autoscale-exp -exp fig9            # one experiment at full fidelity
//	autoscale-exp -exp all -quick      # every experiment, reduced fidelity
//	autoscale-exp -exp all -parallel 8 # same tables, 8 workers
//	autoscale-exp -list                # list experiment IDs
//
// Tables go to stdout in experiment-ID order and are byte-identical for
// every -parallel setting; per-experiment wall-clock timings go to stderr.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"autoscale"
)

func main() {
	var (
		expID    = flag.String("exp", "all", "experiment ID (e.g. fig9, tableIII) or 'all'")
		quick    = flag.Bool("quick", false, "reduced-fidelity run for smoke testing")
		seed     = flag.Int64("seed", 42, "random seed")
		runs     = flag.Int("runs", 0, "override measured inferences per cell (0 = default)")
		train    = flag.Int("train", 0, "override training runs per state (0 = default)")
		parallel = flag.Int("parallel", 0, "worker pool size (0 = GOMAXPROCS); output is identical for every setting")
		list     = flag.Bool("list", false, "list experiment IDs and exit")
		csvTo    = flag.String("csv", "", "also write each experiment as <dir>/<id>.csv")
		faults   = flag.String("faults", "", "JSON fault schedule for the fault-injection experiments (default: built-in storm)")
	)
	flag.Parse()

	if *list {
		for _, id := range autoscale.Experiments() {
			fmt.Println(id)
		}
		return
	}

	opts := autoscale.ExperimentOptions{Seed: *seed}
	if *quick {
		opts = autoscale.QuickOptions(*seed)
	}
	if *runs > 0 {
		opts.Runs = *runs
	}
	if *train > 0 {
		opts.TrainRuns = *train
	}
	opts.Parallel = *parallel
	if *faults != "" {
		sched, err := autoscale.LoadFaultSchedule(*faults)
		if err != nil {
			fmt.Fprintf(os.Stderr, "autoscale-exp: %v\n", err)
			os.Exit(1)
		}
		opts.Faults = sched
	}

	ids := []string{*expID}
	if *expID == "all" {
		ids = autoscale.Experiments()
	}
	start := time.Now()
	outcomes := autoscale.RunExperiments(ids, opts)
	for _, oc := range outcomes {
		if oc.Err != nil {
			fmt.Fprintf(os.Stderr, "autoscale-exp: %s: %v\n", oc.ID, oc.Err)
			os.Exit(1)
		}
		oc.Table.Fprint(os.Stdout)
		if *csvTo != "" {
			if err := writeCSV(oc.Table, filepath.Join(*csvTo, oc.ID+".csv")); err != nil {
				fmt.Fprintf(os.Stderr, "autoscale-exp: %v\n", err)
				os.Exit(1)
			}
		}
		fmt.Fprintf(os.Stderr, "%-16s %6.1fs\n", oc.ID, oc.Elapsed.Seconds())
	}
	if len(outcomes) > 1 {
		fmt.Fprintf(os.Stderr, "%-16s %6.1fs (wall, %d experiments)\n",
			"total", time.Since(start).Seconds(), len(outcomes))
	}
}

func writeCSV(t *autoscale.ExperimentTable, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
