// Command autoscale-sim runs inference scenarios on the simulated edge-cloud
// testbed under a chosen scheduling policy and reports energy efficiency,
// latency, QoS violations and the decision breakdown.
//
// Usage:
//
//	autoscale-sim -device Mi8Pro -model "MobileNet v3" -env D2 -n 500
//	autoscale-sim -device MotoXForce -policy opt -env S4
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"autoscale"
)

func main() {
	var (
		device  = flag.String("device", autoscale.Mi8Pro, "device: Mi8Pro, GalaxyS10e, MotoXForce")
		model   = flag.String("model", "", "model name (default: all ten zoo networks)")
		envID   = flag.String("env", autoscale.EnvS1, "environment: S1-S5, D1-D4")
		policy  = flag.String("policy", "autoscale", "policy: autoscale, opt, edge-cpu, edge-best, cloud, connected, mosaic, neurosurgeon")
		n       = flag.Int("n", 300, "inferences per model")
		train   = flag.Int("train", 60, "AutoScale training runs per (model, variance state)")
		stream  = flag.Bool("streaming", false, "streaming (30 FPS) instead of non-streaming scenario")
		seed    = flag.Int64("seed", 1, "random seed")
		verbose = flag.Bool("v", false, "print every decision")
		tracef  = flag.String("trace", "", "write a JSON-Lines decision trace (autoscale policy only)")
	)
	flag.Parse()

	if err := run(*device, *model, *envID, *policy, *n, *train, *stream, *seed, *verbose, *tracef); err != nil {
		fmt.Fprintln(os.Stderr, "autoscale-sim:", err)
		os.Exit(1)
	}
}

func run(device, modelName, envID, policyName string, n, train int, streaming bool, seed int64, verbose bool, tracePath string) error {
	world, err := autoscale.NewWorld(device, seed)
	if err != nil {
		return err
	}
	intensity := autoscale.NonStreaming
	if streaming {
		intensity = autoscale.Streaming
	}

	models := autoscale.Models()
	if modelName != "" {
		m, err := autoscale.Model(modelName)
		if err != nil {
			return err
		}
		models = []*autoscale.DNNModel{m}
	}

	pol, tracedEngine, err := buildPolicyEngine(world, policyName, intensity, train, seed)
	if err != nil {
		return err
	}

	var traceW *autoscale.TraceWriter
	if tracePath != "" {
		if policyName != "autoscale" {
			return fmt.Errorf("-trace requires -policy autoscale")
		}
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		defer f.Close()
		traceW = autoscale.NewTraceWriter(f)
		defer traceW.Flush()
		pol = autoscale.TracedPolicy(tracedEngine, traceW)
	}

	env, err := autoscale.NewEnvironment(envID, seed)
	if err != nil {
		return err
	}

	fmt.Printf("device=%s env=%s policy=%s intensity=%s\n\n", device, env, pol.Name(), intensity)
	fmt.Printf("%-20s %10s %10s %8s  %s\n", "model", "avg mJ", "avg ms", "QoS-X", "decisions")
	for _, m := range models {
		qos := autoscale.QoSFor(m, intensity)
		var energy, latency float64
		var viol int
		locs := map[string]int{}
		for i := 0; i < n; i++ {
			meas, err := pol.Run(m, env.Sample())
			if err != nil {
				return fmt.Errorf("%s: %w", m.Name, err)
			}
			energy += meas.EnergyJ
			latency += meas.LatencyS
			if meas.LatencyS > qos {
				viol++
			}
			locs[meas.Target.Location.String()]++
			if verbose {
				fmt.Printf("  %-20s -> %-24s %6.1fms %7.1fmJ\n",
					m.Name, meas.Target, meas.LatencyS*1e3, meas.EnergyJ*1e3)
			}
		}
		var parts []string
		for _, loc := range []string{"local", "connected", "cloud"} {
			if locs[loc] > 0 {
				parts = append(parts, fmt.Sprintf("%s %.0f%%", loc, 100*float64(locs[loc])/float64(n)))
			}
		}
		fmt.Printf("%-20s %10.1f %10.1f %7.1f%%  %s\n",
			m.Name, energy/float64(n)*1e3, latency/float64(n)*1e3,
			100*float64(viol)/float64(n), strings.Join(parts, ", "))
	}
	return nil
}

func buildPolicy(w *autoscale.World, name string, intensity autoscale.Intensity, train int, seed int64) (autoscale.Policy, error) {
	p, _, err := buildPolicyEngine(w, name, intensity, train, seed)
	return p, err
}

func buildPolicyEngine(w *autoscale.World, name string, intensity autoscale.Intensity, train int, seed int64) (autoscale.Policy, *autoscale.Engine, error) {
	switch name {
	case "autoscale":
		cfg := autoscale.DefaultEngineConfig()
		cfg.Intensity = intensity
		cfg.Seed = seed
		engine, err := autoscale.NewTrainedEngine(w, cfg, train, seed)
		if err != nil {
			return nil, nil, err
		}
		if err := engine.Agent().SetEpsilon(0); err != nil {
			return nil, nil, err
		}
		return autoscale.AsPolicy(engine), engine, nil
	case "opt":
		return autoscale.Opt(w, intensity), nil, nil
	}
	want := canonical(name)
	if want == "connected" {
		want = "connectededge"
	}
	for _, p := range append(autoscale.Baselines(w, intensity), autoscale.PriorWork(w, intensity)...) {
		if canonical(p.Name()) == want {
			return p, nil, nil
		}
	}
	return nil, nil, fmt.Errorf("unknown policy %q", name)
}

func canonical(s string) string {
	s = strings.ToLower(s)
	for _, cut := range []string{" ", "(", ")", "-", "fp32"} {
		s = strings.ReplaceAll(s, cut, "")
	}
	return s
}
