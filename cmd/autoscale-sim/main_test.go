package main

import (
	"os"
	"path/filepath"
	"testing"

	"autoscale"
)

func TestBuildPolicyNames(t *testing.T) {
	w, err := autoscale.NewWorld(autoscale.Mi8Pro, 1)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]string{
		"opt":          "Opt",
		"edge-cpu":     "Edge (CPU FP32)",
		"edge-best":    "Edge (Best)",
		"cloud":        "Cloud",
		"connected":    "Connected Edge",
		"mosaic":       "MOSAIC",
		"neurosurgeon": "NeuroSurgeon",
	}
	for arg, want := range cases {
		p, err := buildPolicy(w, arg, autoscale.NonStreaming, 1, 1)
		if err != nil {
			t.Fatalf("%s: %v", arg, err)
		}
		if p.Name() != want {
			t.Errorf("buildPolicy(%s) = %s, want %s", arg, p.Name(), want)
		}
	}
	if _, err := buildPolicy(w, "magic", autoscale.NonStreaming, 1, 1); err == nil {
		t.Error("unknown policy should fail")
	}
}

func TestRunEndToEnd(t *testing.T) {
	// A tiny end-to-end pass of the tool's core loop with the opt policy.
	if err := run(autoscale.Mi8Pro, "MobileNet v1", autoscale.EnvS1, "opt", 3, 1, false, 1, false, ""); err != nil {
		t.Fatal(err)
	}
	if err := run("iPhone", "", autoscale.EnvS1, "opt", 1, 1, false, 1, false, ""); err == nil {
		t.Error("unknown device should fail")
	}
	if err := run(autoscale.Mi8Pro, "AlexNet", autoscale.EnvS1, "opt", 1, 1, false, 1, false, ""); err == nil {
		t.Error("unknown model should fail")
	}
	if err := run(autoscale.Mi8Pro, "", "S9", "opt", 1, 1, false, 1, false, ""); err == nil {
		t.Error("unknown environment should fail")
	}
}

func TestTraceFlag(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.jsonl")
	if err := run(autoscale.Mi8Pro, "MobileNet v1", autoscale.EnvS1, "autoscale", 5, 1, false, 1, false, path); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := autoscale.ReadTrace(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 {
		t.Errorf("trace records = %d, want 5", len(recs))
	}
	// Tracing requires the autoscale policy.
	if err := run(autoscale.Mi8Pro, "MobileNet v1", autoscale.EnvS1, "opt", 1, 1, false, 1, false, path); err == nil {
		t.Error("-trace with a non-autoscale policy should fail")
	}
}

func TestCanonical(t *testing.T) {
	if canonical("Edge (CPU FP32)") != "edgecpu" {
		t.Errorf("canonical = %q", canonical("Edge (CPU FP32)"))
	}
	if canonical("edge-cpu") != "edgecpu" {
		t.Error("flag form must canonicalize identically")
	}
}
