// Command autoscale-train trains an AutoScale Q-table on a device, saves or
// loads it, and optionally transfers a table trained on one device to
// another (the paper's learning-transfer experiment).
//
// Usage:
//
//	autoscale-train -device Mi8Pro -runs 100 -o mi8pro.qtable
//	autoscale-train -device GalaxyS10e -transfer mi8pro.qtable -runs 20 -o s10e.qtable
package main

import (
	"flag"
	"fmt"
	"os"

	"autoscale"
)

func main() {
	var (
		device   = flag.String("device", autoscale.Mi8Pro, "device: Mi8Pro, GalaxyS10e, MotoXForce")
		runs     = flag.Int("runs", 100, "training runs per (model, variance state)")
		out      = flag.String("o", "", "path to write the trained Q-table (JSON)")
		transfer = flag.String("transfer", "", "warm-start from a Q-table trained on another device")
		donorDev = flag.String("donor-device", autoscale.Mi8Pro, "device the transferred table was trained on")
		seed     = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	if err := run(*device, *donorDev, *transfer, *out, *runs, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "autoscale-train:", err)
		os.Exit(1)
	}
}

func run(device, donorDevice, transferPath, outPath string, runs int, seed int64) error {
	world, err := autoscale.NewWorld(device, seed)
	if err != nil {
		return err
	}
	cfg := autoscale.DefaultEngineConfig()
	cfg.Seed = seed
	engine, err := autoscale.NewEngine(world, cfg)
	if err != nil {
		return err
	}

	if transferPath != "" {
		donorWorld, err := autoscale.NewWorld(donorDevice, seed)
		if err != nil {
			return err
		}
		donor, err := autoscale.NewEngine(donorWorld, cfg)
		if err != nil {
			return err
		}
		if err := autoscale.LoadQTable(donor, transferPath); err != nil {
			return err
		}
		if err := engine.TransferFrom(donor); err != nil {
			return err
		}
		fmt.Printf("transferred Q-table from %s (%d states)\n", donorDevice, len(donor.Agent().States()))
	}

	fmt.Printf("training on %s: %d runs per (model, variance state)...\n", device, runs)
	if err := autoscale.Train(engine, autoscale.Models(), runs, seed+1); err != nil {
		return err
	}
	ag := engine.Agent()
	fmt.Printf("trained: %d states, %d actions, %.2f KB table\n",
		len(ag.States()), ag.NumActions(), float64(ag.MemoryBytes())/1024)

	if outPath != "" {
		if err := autoscale.SaveQTable(engine, outPath); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", outPath)
	}
	return nil
}
