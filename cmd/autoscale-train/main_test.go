package main

import (
	"os"
	"path/filepath"
	"testing"

	"autoscale"
)

func TestTrainSaveTransfer(t *testing.T) {
	dir := t.TempDir()
	donorPath := filepath.Join(dir, "donor.qtable")

	// Train a tiny table on the Mi8Pro and save it.
	if err := run(autoscale.Mi8Pro, autoscale.Mi8Pro, "", donorPath, 1, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(donorPath); err != nil {
		t.Fatal("snapshot not written")
	}

	// Transfer it onto the Galaxy S10e (different action space) and train.
	outPath := filepath.Join(dir, "s10e.qtable")
	if err := run(autoscale.GalaxyS10e, autoscale.Mi8Pro, donorPath, outPath, 1, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(outPath); err != nil {
		t.Fatal("transferred snapshot not written")
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("iPhone", autoscale.Mi8Pro, "", "", 1, 1); err == nil {
		t.Error("unknown device should fail")
	}
	if err := run(autoscale.Mi8Pro, autoscale.Mi8Pro, "/does/not/exist.qtable", "", 1, 1); err == nil {
		t.Error("missing transfer snapshot should fail")
	}
}
