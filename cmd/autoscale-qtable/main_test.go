package main

import (
	"os"
	"path/filepath"
	"testing"

	"autoscale"
)

func TestInspectTrainedTable(t *testing.T) {
	if err := run(autoscale.Mi8Pro, "", "", 0, 1); err == nil {
		t.Error("neither -in nor -train should fail")
	}
	if err := run(autoscale.Mi8Pro, "", "ResNet 50", 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := run(autoscale.Mi8Pro, "", "AlexNet", 1, 1); err == nil {
		t.Error("unknown model should fail")
	}
	if err := run("iPhone", "", "", 1, 1); err == nil {
		t.Error("unknown device should fail")
	}
	if err := run(autoscale.Mi8Pro, "/does/not/exist", "", 0, 1); err == nil {
		t.Error("missing snapshot should fail")
	}
}

// trainedSnapshot trains a tiny engine and returns its raw legacy snapshot.
func trainedSnapshot(t *testing.T) []byte {
	t.Helper()
	world, err := autoscale.NewWorld(autoscale.Mi8Pro, 1)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := autoscale.NewTrainedEngine(world, autoscale.DefaultEngineConfig(), 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	data, err := engine.SnapshotQTable()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestInspectLegacySnapshotFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "legacy.qtable")
	if err := os.WriteFile(path, trainedSnapshot(t), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(autoscale.Mi8Pro, path, "", 0, 1); err != nil {
		t.Fatalf("legacy snapshot rejected: %v", err)
	}
}

func TestInspectCheckpointEnvelope(t *testing.T) {
	world, err := autoscale.NewWorld(autoscale.Mi8Pro, 1)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := autoscale.NewTrainedEngine(world, autoscale.DefaultEngineConfig(), 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	ck, err := autoscale.NewPolicyCheckpoint(engine, "Mi8Pro")
	if err != nil {
		t.Fatal(err)
	}
	ck.Generation = 3
	path := filepath.Join(t.TempDir(), "gen-0000000000000003.ckpt")
	if err := autoscale.WritePolicyCheckpoint(path, ck); err != nil {
		t.Fatal(err)
	}
	if err := run(autoscale.Mi8Pro, path, "", 0, 1); err != nil {
		t.Fatalf("checkpoint envelope rejected: %v", err)
	}
}

// TestInspectRejectsTruncatedFiles: a cut-off snapshot of either format must
// be an error, never a silently empty (or smaller) table.
func TestInspectRejectsTruncatedFiles(t *testing.T) {
	snap := trainedSnapshot(t)
	world, err := autoscale.NewWorld(autoscale.Mi8Pro, 1)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := autoscale.NewTrainedEngine(world, autoscale.DefaultEngineConfig(), 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	ck, err := autoscale.NewPolicyCheckpoint(engine, "Mi8Pro")
	if err != nil {
		t.Fatal(err)
	}
	envelope, err := autoscale.EncodePolicyCheckpoint(ck)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	for name, data := range map[string][]byte{
		"empty.qtable":      nil,
		"cut-legacy.qtable": snap[:len(snap)/2],
		"cut-envelope.ckpt": envelope[:len(envelope)/2],
	} {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := run(autoscale.Mi8Pro, path, "", 0, 1); err == nil {
			t.Errorf("%s loaded without error", name)
		}
	}
}
