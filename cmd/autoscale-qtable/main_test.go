package main

import (
	"testing"

	"autoscale"
)

func TestInspectTrainedTable(t *testing.T) {
	if err := run(autoscale.Mi8Pro, "", "", 0, 1); err == nil {
		t.Error("neither -in nor -train should fail")
	}
	if err := run(autoscale.Mi8Pro, "", "ResNet 50", 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := run(autoscale.Mi8Pro, "", "AlexNet", 1, 1); err == nil {
		t.Error("unknown model should fail")
	}
	if err := run("iPhone", "", "", 1, 1); err == nil {
		t.Error("unknown device should fail")
	}
	if err := run(autoscale.Mi8Pro, "/does/not/exist", "", 0, 1); err == nil {
		t.Error("missing snapshot should fail")
	}
}
