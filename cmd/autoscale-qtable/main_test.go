package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"autoscale"
)

func TestInspectTrainedTable(t *testing.T) {
	if err := run(autoscale.Mi8Pro, "", "", 0, 1); err == nil {
		t.Error("neither -in nor -train should fail")
	}
	if err := run(autoscale.Mi8Pro, "", "ResNet 50", 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := run(autoscale.Mi8Pro, "", "AlexNet", 1, 1); err == nil {
		t.Error("unknown model should fail")
	}
	if err := run("iPhone", "", "", 1, 1); err == nil {
		t.Error("unknown device should fail")
	}
	if err := run(autoscale.Mi8Pro, "/does/not/exist", "", 0, 1); err == nil {
		t.Error("missing snapshot should fail")
	}
}

// trainedSnapshot trains a tiny engine and returns its raw legacy snapshot.
func trainedSnapshot(t *testing.T) []byte {
	t.Helper()
	world, err := autoscale.NewWorld(autoscale.Mi8Pro, 1)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := autoscale.NewTrainedEngine(world, autoscale.DefaultEngineConfig(), 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	data, err := engine.SnapshotQTable()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestInspectLegacySnapshotFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "legacy.qtable")
	if err := os.WriteFile(path, trainedSnapshot(t), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(autoscale.Mi8Pro, path, "", 0, 1); err != nil {
		t.Fatalf("legacy snapshot rejected: %v", err)
	}
}

func TestInspectCheckpointEnvelope(t *testing.T) {
	world, err := autoscale.NewWorld(autoscale.Mi8Pro, 1)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := autoscale.NewTrainedEngine(world, autoscale.DefaultEngineConfig(), 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	ck, err := autoscale.NewPolicyCheckpoint(engine, "Mi8Pro")
	if err != nil {
		t.Fatal(err)
	}
	ck.Generation = 3
	path := filepath.Join(t.TempDir(), "gen-0000000000000003.ckpt")
	if err := autoscale.WritePolicyCheckpoint(path, ck); err != nil {
		t.Fatal(err)
	}
	if err := run(autoscale.Mi8Pro, path, "", 0, 1); err != nil {
		t.Fatalf("checkpoint envelope rejected: %v", err)
	}
}

// TestHealthSubcommand checks the learning-health view of a stored snapshot:
// coverage and visit entropy are printed with sane values, and the
// runtime-only counters (selections, TD-error) are omitted for a loaded
// table that never selected anything in this process.
func TestHealthSubcommand(t *testing.T) {
	path := filepath.Join(t.TempDir(), "legacy.qtable")
	if err := os.WriteFile(path, trainedSnapshot(t), 0o644); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := runHealth(&sb, autoscale.Mi8Pro, path, 0, 1); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"algorithm=Q-learning", "coverage", "visit entropy", "visits"} {
		if !strings.Contains(out, want) {
			t.Errorf("health output missing %q in:\n%s", want, out)
		}
	}
	if strings.Contains(out, "(0.00%)") {
		t.Errorf("trained snapshot reports zero coverage:\n%s", out)
	}
	if strings.Contains(out, "TD-error") {
		t.Errorf("loaded snapshot must not report runtime TD counters:\n%s", out)
	}

	// A table trained in-process does carry the runtime counters.
	sb.Reset()
	if err := runHealth(&sb, autoscale.Mi8Pro, "", 1, 1); err != nil {
		t.Fatal(err)
	}
	out = sb.String()
	if !strings.Contains(out, "TD-error EMA") || !strings.Contains(out, "explored") {
		t.Errorf("in-process training must report TD/exploration counters:\n%s", out)
	}
}

func TestHealthSubcommandErrors(t *testing.T) {
	var sb strings.Builder
	if err := runHealth(&sb, autoscale.Mi8Pro, "", 0, 1); err == nil {
		t.Error("health with neither -in nor -train accepted")
	}
	if err := runHealth(&sb, "iPhone", "", 1, 1); err == nil {
		t.Error("health with unknown device accepted")
	}
	if err := runHealth(&sb, autoscale.Mi8Pro, "/does/not/exist", 0, 1); err == nil {
		t.Error("health with missing snapshot accepted")
	}
}

// TestInspectRejectsTruncatedFiles: a cut-off snapshot of either format must
// be an error, never a silently empty (or smaller) table.
func TestInspectRejectsTruncatedFiles(t *testing.T) {
	snap := trainedSnapshot(t)
	world, err := autoscale.NewWorld(autoscale.Mi8Pro, 1)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := autoscale.NewTrainedEngine(world, autoscale.DefaultEngineConfig(), 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	ck, err := autoscale.NewPolicyCheckpoint(engine, "Mi8Pro")
	if err != nil {
		t.Fatal(err)
	}
	envelope, err := autoscale.EncodePolicyCheckpoint(ck)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	for name, data := range map[string][]byte{
		"empty.qtable":      nil,
		"cut-legacy.qtable": snap[:len(snap)/2],
		"cut-envelope.ckpt": envelope[:len(envelope)/2],
	} {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := run(autoscale.Mi8Pro, path, "", 0, 1); err == nil {
			t.Errorf("%s loaded without error", name)
		}
	}
}
