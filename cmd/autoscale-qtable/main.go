// Command autoscale-qtable inspects a trained Q-table: it loads a snapshot
// written by autoscale-train (or trains one in place), decodes each visited
// state back into its Table I feature bins and prints the learned greedy
// policy — which execution target AutoScale would pick in that situation.
//
// Snapshots come in two formats: the policy-plane checkpoint envelope
// (written by the serving gateway's store and by autoscale-policy) — whose
// generation, device and config-hash metadata are printed and whose CRC is
// verified — and the legacy raw JSON snapshot of autoscale-train. Truncated
// or corrupt files of either format are rejected loudly, never half-loaded.
//
// Usage:
//
//	autoscale-qtable -device Mi8Pro -in mi8pro.qtable
//	autoscale-qtable -device Mi8Pro -in store/Mi8Pro/gen-0000000000000003.ckpt
//	autoscale-qtable -device Mi8Pro -train 60            # train then inspect
//	autoscale-qtable -device Mi8Pro -in t.qtable -model "ResNet 50"
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"autoscale"
)

func main() {
	var (
		device = flag.String("device", autoscale.Mi8Pro, "device: Mi8Pro, GalaxyS10e, MotoXForce")
		in     = flag.String("in", "", "Q-table snapshot to load (from autoscale-train)")
		train  = flag.Int("train", 0, "train in place with this many runs per (model, variance state)")
		model  = flag.String("model", "", "only show states reachable by this model")
		seed   = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	if err := run(*device, *in, *model, *train, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "autoscale-qtable:", err)
		os.Exit(1)
	}
}

func run(device, inPath, modelName string, train int, seed int64) error {
	world, err := autoscale.NewWorld(device, seed)
	if err != nil {
		return err
	}
	cfg := autoscale.DefaultEngineConfig()
	cfg.Seed = seed
	var engine *autoscale.Engine
	switch {
	case inPath != "":
		engine, err = autoscale.NewEngine(world, cfg)
		if err != nil {
			return err
		}
		if err := loadSnapshot(engine, inPath); err != nil {
			return err
		}
	case train > 0:
		engine, err = autoscale.NewTrainedEngine(world, cfg, train, seed)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("provide -in <snapshot> or -train <runs>")
	}

	ag := engine.Agent()
	states := ag.States()
	fmt.Printf("device=%s  states=%d  actions=%d  table=%.1f KB\n\n",
		device, len(states), ag.NumActions(), float64(ag.MemoryBytes())/1024)

	var onlyKey string
	if modelName != "" {
		m, err := autoscale.Model(modelName)
		if err != nil {
			return err
		}
		// The model fixes the first four feature bins of the key.
		full := string(engine.ObserveState(m, autoscale.Conditions{RSSIWLAN: -55, RSSIP2P: -55}))
		onlyKey = strings.Join(strings.Split(full, "|")[:4], "|")
	}

	fmt.Printf("%-18s %-28s %10s %8s\n",
		"state (Table I)", "greedy action", "Q", "visits")
	for _, s := range states {
		key := string(s)
		if onlyKey != "" && !strings.HasPrefix(key, onlyKey) {
			continue
		}
		best := -1
		bestQ := 0.0
		for i := 0; i < ag.NumActions(); i++ {
			if q := ag.Q(s, i); best < 0 || q > bestQ {
				best, bestQ = i, q
			}
		}
		fmt.Printf("%-18s %-28s %10.1f %8d\n",
			key, engine.Actions.Describe(best), bestQ, ag.Visits(s))
	}
	fmt.Println("\nkey: SCONV|SFC|SRC|SMAC|SCo_CPU|SCo_MEM|SRSSI_W|SRSSI_P (bin indices per Table I)")
	return nil
}

// loadSnapshot restores an engine from either snapshot format. Checkpoint
// envelopes get their metadata printed and CRC verified; legacy raw
// snapshots are validated strictly — an empty or truncated file is an
// error, not an empty table.
func loadSnapshot(engine *autoscale.Engine, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("load snapshot: %w", err)
	}
	if len(data) == 0 {
		return fmt.Errorf("load snapshot: %s is empty (truncated write?)", path)
	}
	ck, err := autoscale.DecodePolicyCheckpoint(data)
	switch {
	case err == nil:
		fmt.Printf("checkpoint envelope: device=%s generation=%d config=%s states=%d visits=%d\n",
			ck.Device, ck.Generation, ck.ConfigHash, ck.States, ck.Meta.TotalVisits())
		if hash := engine.ConfigHash(); ck.ConfigHash != hash {
			fmt.Printf("warning: checkpoint config hash %s differs from this engine's %s\n",
				ck.ConfigHash, hash)
		}
		if len(ck.Sources) > 0 {
			fmt.Printf("merged from: %s\n", strings.Join(ck.Sources, ", "))
		}
		fmt.Println()
		return engine.RestoreQTable(ck.Snapshot)
	case errors.Is(err, autoscale.ErrPolicyNotEnvelope):
		// Legacy raw rl snapshot; RestoreQTable fails loudly on malformed
		// or cut-off JSON.
		if err := engine.RestoreQTable(data); err != nil {
			return fmt.Errorf("load snapshot %s: %w", path, err)
		}
		return nil
	default:
		return fmt.Errorf("load snapshot %s: %w", path, err)
	}
}
