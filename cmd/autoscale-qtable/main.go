// Command autoscale-qtable inspects a trained Q-table: it loads a snapshot
// written by autoscale-train (or trains one in place), decodes each visited
// state back into its Table I feature bins and prints the learned greedy
// policy — which execution target AutoScale would pick in that situation.
//
// Snapshots come in two formats: the policy-plane checkpoint envelope
// (written by the serving gateway's store and by autoscale-policy) — whose
// generation, device and config-hash metadata are printed and whose CRC is
// verified — and the legacy raw JSON snapshot of autoscale-train. Truncated
// or corrupt files of either format are rejected loudly, never half-loaded.
//
// The "health" subcommand prints the learning-health summary of a checkpoint
// instead of the full policy: Q-table coverage of the discrete state space,
// the normalized entropy of the visit distribution (1.0 = uniform
// exploration, 0 = a single hot state) and the visit totals.
//
// Usage:
//
//	autoscale-qtable -device Mi8Pro -in mi8pro.qtable
//	autoscale-qtable -device Mi8Pro -in store/Mi8Pro/gen-0000000000000003.ckpt
//	autoscale-qtable -device Mi8Pro -train 60            # train then inspect
//	autoscale-qtable -device Mi8Pro -in t.qtable -model "ResNet 50"
//	autoscale-qtable health -device Mi8Pro -in t.qtable  # coverage/entropy
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"autoscale"
)

func main() {
	args := os.Args[1:]
	health := len(args) > 0 && args[0] == "health"
	fs := flag.NewFlagSet(os.Args[0], flag.ExitOnError)
	var (
		device = fs.String("device", autoscale.Mi8Pro, "device: Mi8Pro, GalaxyS10e, MotoXForce")
		in     = fs.String("in", "", "Q-table snapshot to load (from autoscale-train)")
		train  = fs.Int("train", 0, "train in place with this many runs per (model, variance state)")
		model  = fs.String("model", "", "only show states reachable by this model")
		seed   = fs.Int64("seed", 1, "random seed")
	)
	if health {
		args = args[1:]
	}
	fs.Parse(args) //nolint:errcheck // ExitOnError

	var err error
	if health {
		err = runHealth(os.Stdout, *device, *in, *train, *seed)
	} else {
		err = run(*device, *in, *model, *train, *seed)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "autoscale-qtable:", err)
		os.Exit(1)
	}
}

// buildEngine provisions the engine under inspection: fresh plus a loaded
// snapshot, or trained in place.
func buildEngine(device, inPath string, train int, seed int64) (*autoscale.Engine, error) {
	world, err := autoscale.NewWorld(device, seed)
	if err != nil {
		return nil, err
	}
	cfg := autoscale.DefaultEngineConfig()
	cfg.Seed = seed
	switch {
	case inPath != "":
		engine, err := autoscale.NewEngine(world, cfg)
		if err != nil {
			return nil, err
		}
		if err := loadSnapshot(engine, inPath); err != nil {
			return nil, err
		}
		return engine, nil
	case train > 0:
		return autoscale.NewTrainedEngine(world, cfg, train, seed)
	}
	return nil, fmt.Errorf("provide -in <snapshot> or -train <runs>")
}

// runHealth prints the learning-health view of a snapshot: how much of the
// state space the policy has materialized and how its visits are spread.
func runHealth(out io.Writer, device, inPath string, train int, seed int64) error {
	engine, err := buildEngine(device, inPath, train, seed)
	if err != nil {
		return err
	}
	h := engine.Health()
	frozen := ""
	if h.Frozen {
		frozen = "  (frozen)"
	}
	fmt.Fprintf(out, "device=%s  algorithm=%s  epsilon=%.2f%s\n", device, h.Algorithm, h.Epsilon, frozen)
	fmt.Fprintf(out, "%-16s %d / %d states (%.2f%%)\n", "coverage", h.States, h.StateSpaceSize, 100*h.Coverage)
	fmt.Fprintf(out, "%-16s %d total, %d in the hottest state\n", "visits", h.TotalVisits, h.MaxVisits)
	fmt.Fprintf(out, "%-16s %.3f   (1.0 = uniform over visited states, 0 = one hot state)\n",
		"visit entropy", h.VisitEntropy)
	if h.Selections > 0 {
		// Runtime-only counters: populated when the table was trained in this
		// process, absent from a loaded checkpoint.
		fmt.Fprintf(out, "%-16s %.1f%% of %d selections\n", "explored", 100*h.ExplorationRatio, h.Selections)
		fmt.Fprintf(out, "%-16s %.4f over %d updates\n", "TD-error EMA", h.TDErrorEMA, h.TDSamples)
	}
	return nil
}

func run(device, inPath, modelName string, train int, seed int64) error {
	engine, err := buildEngine(device, inPath, train, seed)
	if err != nil {
		return err
	}

	ag := engine.Agent()
	states := ag.States()
	fmt.Printf("device=%s  states=%d  actions=%d  table=%.1f KB\n\n",
		device, len(states), ag.NumActions(), float64(ag.MemoryBytes())/1024)

	var onlyKey string
	if modelName != "" {
		m, err := autoscale.Model(modelName)
		if err != nil {
			return err
		}
		// The model fixes the first four feature bins of the key.
		full := string(engine.ObserveState(m, autoscale.Conditions{RSSIWLAN: -55, RSSIP2P: -55}))
		onlyKey = strings.Join(strings.Split(full, "|")[:4], "|")
	}

	fmt.Printf("%-18s %-28s %10s %8s\n",
		"state (Table I)", "greedy action", "Q", "visits")
	for _, s := range states {
		key := string(s)
		if onlyKey != "" && !strings.HasPrefix(key, onlyKey) {
			continue
		}
		best := -1
		bestQ := 0.0
		for i := 0; i < ag.NumActions(); i++ {
			if q := ag.Q(s, i); best < 0 || q > bestQ {
				best, bestQ = i, q
			}
		}
		fmt.Printf("%-18s %-28s %10.1f %8d\n",
			key, engine.Actions.Describe(best), bestQ, ag.Visits(s))
	}
	fmt.Println("\nkey: SCONV|SFC|SRC|SMAC|SCo_CPU|SCo_MEM|SRSSI_W|SRSSI_P (bin indices per Table I)")
	return nil
}

// loadSnapshot restores an engine from either snapshot format. Checkpoint
// envelopes get their metadata printed and CRC verified; legacy raw
// snapshots are validated strictly — an empty or truncated file is an
// error, not an empty table.
func loadSnapshot(engine *autoscale.Engine, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("load snapshot: %w", err)
	}
	if len(data) == 0 {
		return fmt.Errorf("load snapshot: %s is empty (truncated write?)", path)
	}
	ck, err := autoscale.DecodePolicyCheckpoint(data)
	switch {
	case err == nil:
		fmt.Printf("checkpoint envelope: device=%s generation=%d config=%s states=%d visits=%d\n",
			ck.Device, ck.Generation, ck.ConfigHash, ck.States, ck.Meta.TotalVisits())
		if hash := engine.ConfigHash(); ck.ConfigHash != hash {
			fmt.Printf("warning: checkpoint config hash %s differs from this engine's %s\n",
				ck.ConfigHash, hash)
		}
		if len(ck.Sources) > 0 {
			fmt.Printf("merged from: %s\n", strings.Join(ck.Sources, ", "))
		}
		fmt.Println()
		return engine.RestoreQTable(ck.Snapshot)
	case errors.Is(err, autoscale.ErrPolicyNotEnvelope):
		// Legacy raw rl snapshot; RestoreQTable fails loudly on malformed
		// or cut-off JSON.
		if err := engine.RestoreQTable(data); err != nil {
			return fmt.Errorf("load snapshot %s: %w", path, err)
		}
		return nil
	default:
		return fmt.Errorf("load snapshot %s: %w", path, err)
	}
}
