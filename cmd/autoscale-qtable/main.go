// Command autoscale-qtable inspects a trained Q-table: it loads a snapshot
// written by autoscale-train (or trains one in place), decodes each visited
// state back into its Table I feature bins and prints the learned greedy
// policy — which execution target AutoScale would pick in that situation.
//
// Usage:
//
//	autoscale-qtable -device Mi8Pro -in mi8pro.qtable
//	autoscale-qtable -device Mi8Pro -train 60            # train then inspect
//	autoscale-qtable -device Mi8Pro -in t.qtable -model "ResNet 50"
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"autoscale"
)

func main() {
	var (
		device = flag.String("device", autoscale.Mi8Pro, "device: Mi8Pro, GalaxyS10e, MotoXForce")
		in     = flag.String("in", "", "Q-table snapshot to load (from autoscale-train)")
		train  = flag.Int("train", 0, "train in place with this many runs per (model, variance state)")
		model  = flag.String("model", "", "only show states reachable by this model")
		seed   = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	if err := run(*device, *in, *model, *train, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "autoscale-qtable:", err)
		os.Exit(1)
	}
}

func run(device, inPath, modelName string, train int, seed int64) error {
	world, err := autoscale.NewWorld(device, seed)
	if err != nil {
		return err
	}
	cfg := autoscale.DefaultEngineConfig()
	cfg.Seed = seed
	var engine *autoscale.Engine
	switch {
	case inPath != "":
		engine, err = autoscale.NewEngine(world, cfg)
		if err != nil {
			return err
		}
		if err := autoscale.LoadQTable(engine, inPath); err != nil {
			return err
		}
	case train > 0:
		engine, err = autoscale.NewTrainedEngine(world, cfg, train, seed)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("provide -in <snapshot> or -train <runs>")
	}

	ag := engine.Agent()
	states := ag.States()
	fmt.Printf("device=%s  states=%d  actions=%d  table=%.1f KB\n\n",
		device, len(states), ag.NumActions(), float64(ag.MemoryBytes())/1024)

	var onlyKey string
	if modelName != "" {
		m, err := autoscale.Model(modelName)
		if err != nil {
			return err
		}
		// The model fixes the first four feature bins of the key.
		full := string(engine.ObserveState(m, autoscale.Conditions{RSSIWLAN: -55, RSSIP2P: -55}))
		onlyKey = strings.Join(strings.Split(full, "|")[:4], "|")
	}

	fmt.Printf("%-18s %-28s %10s %8s\n",
		"state (Table I)", "greedy action", "Q", "visits")
	for _, s := range states {
		key := string(s)
		if onlyKey != "" && !strings.HasPrefix(key, onlyKey) {
			continue
		}
		best := -1
		bestQ := 0.0
		for i := 0; i < ag.NumActions(); i++ {
			if q := ag.Q(s, i); best < 0 || q > bestQ {
				best, bestQ = i, q
			}
		}
		fmt.Printf("%-18s %-28s %10.1f %8d\n",
			key, engine.Actions.Describe(best), bestQ, ag.Visits(s))
	}
	fmt.Println("\nkey: SCONV|SFC|SRC|SMAC|SCo_CPU|SCo_MEM|SRSSI_W|SRSSI_P (bin indices per Table I)")
	return nil
}
