package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"autoscale"
)

// writeCk trains a small engine on a device and writes its checkpoint
// envelope to dir, returning the path and the engine's config hash.
func writeCk(t *testing.T, dir, device string, seed int64) (string, string) {
	t.Helper()
	world, err := autoscale.NewWorld(device, seed)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := autoscale.NewTrainedEngine(world, autoscale.DefaultEngineConfig(), 1, seed)
	if err != nil {
		t.Fatal(err)
	}
	ck, err := autoscale.NewPolicyCheckpoint(engine, device)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, device+".ckpt")
	if err := autoscale.WritePolicyCheckpoint(path, ck); err != nil {
		t.Fatal(err)
	}
	return path, ck.ConfigHash
}

func TestUsageErrors(t *testing.T) {
	var out bytes.Buffer
	for _, args := range [][]string{
		nil,
		{"frobnicate"},
		{"inspect"},
		{"diff", "only-one.ckpt"},
		{"merge", "-o", "x.ckpt", "just-one.ckpt"},
		{"merge", "a.ckpt", "b.ckpt"}, // no -o
	} {
		if err := run(args, &out); err == nil {
			t.Errorf("run(%v) succeeded", args)
		}
	}
}

func TestInspectFileAndStore(t *testing.T) {
	dir := t.TempDir()
	path, hash := writeCk(t, dir, autoscale.Mi8Pro, 1)

	var out bytes.Buffer
	if err := run([]string{"inspect", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Mi8Pro") || !strings.Contains(out.String(), hash) {
		t.Fatalf("inspect output missing metadata:\n%s", out.String())
	}

	// Store-mode inspect over a real store directory.
	storeDir := t.TempDir()
	store, err := autoscale.OpenPolicyStore(storeDir, 0)
	if err != nil {
		t.Fatal(err)
	}
	ck, err := autoscale.ReadPolicyCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := store.SaveNext(ck); err != nil {
			t.Fatal(err)
		}
	}
	out.Reset()
	if err := run([]string{"inspect", "-store", storeDir}, &out); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(out.String(), "gen "); got != 2 {
		t.Fatalf("store inspect listed %d generations, want 2:\n%s", got, out.String())
	}

	out.Reset()
	if err := run([]string{"inspect", "-store", t.TempDir()}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "store is empty") {
		t.Fatalf("empty store output: %s", out.String())
	}
}

func TestDiffAndMerge(t *testing.T) {
	dir := t.TempDir()
	pathA, hash := writeCk(t, dir, autoscale.Mi8Pro, 1)
	pathB, _ := writeCk(t, dir, autoscale.Mi8Pro, 99)

	var out bytes.Buffer
	if err := run([]string{"diff", pathA, pathB}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "shared") {
		t.Fatalf("diff output missing coverage summary:\n%s", out.String())
	}

	merged := filepath.Join(dir, "fleet.ckpt")
	out.Reset()
	if err := run([]string{"merge", "-o", merged, pathA, pathB}, &out); err != nil {
		t.Fatal(err)
	}
	ck, err := autoscale.ReadPolicyCheckpoint(merged)
	if err != nil {
		t.Fatalf("merged output unreadable: %v", err)
	}
	if ck.ConfigHash != hash || len(ck.Sources) != 2 {
		t.Fatalf("merged meta: %+v", ck.Meta)
	}
	if !strings.Contains(out.String(), "merged from") {
		t.Fatalf("merge output missing sources:\n%s", out.String())
	}

	// Different devices have different action spaces/config hashes: merge
	// must refuse, diff must degrade to coverage-only.
	pathC, _ := writeCk(t, dir, autoscale.GalaxyS10e, 1)
	if err := run([]string{"merge", "-o", merged, pathA, pathC}, &out); err == nil {
		t.Fatal("merge accepted incompatible checkpoints")
	}
	out.Reset()
	if err := run([]string{"diff", pathA, pathC}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "incompatible") {
		t.Fatalf("cross-device diff missing incompatibility note:\n%s", out.String())
	}
}
