// Command autoscale-policy operates on policy-plane checkpoints — the
// durable Q-table envelopes the serving gateway's store writes (see
// internal/policy). It works on standalone envelope files and on store
// directories.
//
// Usage:
//
//	autoscale-policy inspect store/Mi8Pro/gen-0000000000000002.ckpt
//	autoscale-policy inspect -store store            # every device's history
//	autoscale-policy diff a.ckpt b.ckpt              # where do the policies disagree?
//	autoscale-policy merge -o fleet.ckpt a.ckpt b.ckpt c.ckpt
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"autoscale"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "autoscale-policy:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: autoscale-policy <inspect|diff|merge> ...")
	}
	switch args[0] {
	case "inspect":
		return inspect(args[1:], out)
	case "diff":
		return diff(args[1:], out)
	case "merge":
		return merge(args[1:], out)
	default:
		return fmt.Errorf("unknown subcommand %q (inspect, diff, merge)", args[0])
	}
}

func printMeta(out io.Writer, m autoscale.PolicyMeta) {
	fmt.Fprintf(out, "%-24s gen %-6d config %s  actions %-4d states %-5d visits %d\n",
		m.Device, m.Generation, m.ConfigHash, m.Actions, m.States, m.TotalVisits())
	if len(m.Sources) > 0 {
		fmt.Fprintf(out, "%-24s merged from: %s\n", "", strings.Join(m.Sources, ", "))
	}
}

// inspect prints envelope metadata for files, or walks a store directory.
func inspect(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("inspect", flag.ContinueOnError)
	storeDir := fs.String("store", "", "inspect a checkpoint store directory instead of files")
	device := fs.String("device", "", "restrict -store output to one device")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *storeDir == "" {
		if fs.NArg() == 0 {
			return fmt.Errorf("inspect needs envelope files or -store DIR")
		}
		for _, path := range fs.Args() {
			ck, err := autoscale.ReadPolicyCheckpoint(path)
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "%s:\n  ", path)
			printMeta(out, ck.Meta)
		}
		return nil
	}

	store, err := autoscale.OpenPolicyStore(*storeDir, 0)
	if err != nil {
		return err
	}
	devices := []string{*device}
	if *device == "" {
		if devices, err = store.Devices(); err != nil {
			return err
		}
		if len(devices) == 0 {
			fmt.Fprintln(out, "store is empty")
			return nil
		}
	}
	for _, d := range devices {
		history, err := store.History(d)
		if err != nil {
			return err
		}
		if len(history) == 0 {
			return fmt.Errorf("no valid checkpoints for device %s", d)
		}
		for _, m := range history {
			printMeta(out, m)
		}
	}
	return nil
}

// diff compares two checkpoints: coverage (states known to only one side)
// and policy disagreement (shared states whose greedy action differs).
func diff(args []string, out io.Writer) error {
	if len(args) != 2 {
		return fmt.Errorf("diff needs exactly two envelope files")
	}
	a, err := autoscale.ReadPolicyCheckpoint(args[0])
	if err != nil {
		return err
	}
	b, err := autoscale.ReadPolicyCheckpoint(args[1])
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "A: ")
	printMeta(out, a.Meta)
	fmt.Fprintf(out, "B: ")
	printMeta(out, b.Meta)
	if a.ConfigHash != b.ConfigHash || a.Actions != b.Actions {
		fmt.Fprintln(out, "\nincompatible tables (config hash or action space differs) — coverage only")
	}

	agA, err := a.Agent()
	if err != nil {
		return err
	}
	agB, err := b.Agent()
	if err != nil {
		return err
	}
	rowsA, rowsB := agA.Rows(), agB.Rows()
	var onlyA, onlyB, shared, disagree int
	var maxDelta float64
	var disagreements []string
	for s, rowA := range rowsA {
		rowB, ok := rowsB[s]
		if !ok {
			onlyA++
			continue
		}
		shared++
		if a.Actions != b.Actions {
			continue
		}
		bestA, bestB := argmax(rowA), argmax(rowB)
		for i := range rowA {
			if d := abs(rowA[i] - rowB[i]); d > maxDelta {
				maxDelta = d
			}
		}
		if bestA != bestB {
			disagree++
			disagreements = append(disagreements, fmt.Sprintf(
				"  %-20s A:action %-3d (q=%.1f)  B:action %-3d (q=%.1f)", s, bestA, rowA[bestA], bestB, rowB[bestB]))
		}
	}
	for s := range rowsB {
		if _, ok := rowsA[s]; !ok {
			onlyB++
		}
	}
	fmt.Fprintf(out, "\nstates: %d only in A, %d only in B, %d shared\n", onlyA, onlyB, shared)
	if shared > 0 && a.Actions == b.Actions {
		fmt.Fprintf(out, "greedy disagreement: %d of %d shared states, max |dQ| %.2f\n",
			disagree, shared, maxDelta)
		sort.Strings(disagreements)
		for _, line := range disagreements {
			fmt.Fprintln(out, line)
		}
	}
	return nil
}

// merge federates checkpoint files into one fleet policy envelope.
func merge(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("merge", flag.ContinueOnError)
	outPath := fs.String("o", "", "output envelope file (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *outPath == "" {
		return fmt.Errorf("merge needs -o OUT")
	}
	if fs.NArg() < 2 {
		return fmt.Errorf("merge needs at least two envelope files")
	}
	cks := make([]*autoscale.PolicyCheckpoint, 0, fs.NArg())
	for _, path := range fs.Args() {
		ck, err := autoscale.ReadPolicyCheckpoint(path)
		if err != nil {
			return err
		}
		cks = append(cks, ck)
	}
	merged, err := autoscale.MergePolicies(cks...)
	if err != nil {
		return err
	}
	if err := autoscale.WritePolicyCheckpoint(*outPath, merged); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %s:\n  ", *outPath)
	printMeta(out, merged.Meta)
	return nil
}

func argmax(row []float64) int {
	best := 0
	for i, q := range row {
		if q > row[best] {
			best = i
		}
	}
	return best
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
