package autoscale

import (
	"autoscale/internal/router"
	"autoscale/internal/serve"
)

// Cluster-scale routing tier: a sharded multi-gateway fleet behind one front
// door, with consistent-hash device placement, cross-shard admission and
// backpressure, per-tenant weighted fairness, and shard lifecycle (crash
// drills, draining, checkpoint-warm re-homing). See internal/router for full
// documentation; Fleet.ProvisionRouter is the one-call path from a trained
// donor to a sharded fleet accepting traffic.
type (
	// Router fronts a fleet of gateway shards.
	Router = router.Router
	// RouterConfig tunes tenants, the global in-flight budget, placement,
	// failover and the cross-shard learning plane.
	RouterConfig = router.Config
	// RouterShard names one gateway shard for the router.
	RouterShard = router.ShardGateway
	// RouterTenant is one weighted fairness class.
	RouterTenant = router.Tenant
	// RouterMetrics is a point-in-time copy of the routing tier's counters.
	RouterMetrics = router.RouterSnapshot
	// ShardStatus is one shard's row in the admin /shards document.
	ShardStatus = serve.ShardStatus
	// TenantQueueStatus is one tenant's fairness-queue row in /shards.
	TenantQueueStatus = serve.TenantQueueStatus
)

// Routing-tier sentinel errors.
var (
	// ErrShardDown marks a request bounced by a crashed shard (the router
	// fails it over to a survivor up to RouterConfig.MaxFailovers times).
	ErrShardDown = serve.ErrShardDown
	// ErrUnknownTenant marks a request naming an unconfigured fairness class.
	ErrUnknownTenant = router.ErrUnknownTenant
	// ErrNoHealthyShard marks a request with no live shard left to serve it.
	ErrNoHealthyShard = router.ErrNoHealthyShard
)

// DefaultTenant is the catch-all fairness class for unclassified requests.
const DefaultTenant = router.DefaultTenant

// NewRouter starts the routing tier over already-built gateway shards.
// Fleet.ProvisionRouter builds the shards too.
func NewRouter(shards []RouterShard, cfg RouterConfig) (*Router, error) {
	return router.New(shards, cfg)
}

// ServeRouterAdmin binds the admin/observability endpoint for a sharded
// deployment: the usual gateway surface served from the merged view, plus
// /shards (per-shard lifecycle and tenant queues) and router series appended
// to /metrics.
func ServeRouterAdmin(rt *Router, addr string) (*GatewayAdmin, error) {
	return serve.ServeAdminSource(rt, addr)
}
