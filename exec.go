package autoscale

import "autoscale/internal/exec"

// Execution-context types (see internal/exec for full documentation).
//
// An ExecContext is the substrate's determinism primitive: a root is built
// from one seed, and every stochastic component draws from named streams
// derived from it, so a request's random draws are a pure function of
// (root seed, request identity) — independent of goroutine interleaving.
type (
	// ExecContext derives named RNG streams, shares a virtual clock, and
	// carries observation hooks.
	ExecContext = exec.Context
	// ExecRand is a deterministic RNG stream derived by name.
	ExecRand = exec.Rand
	// ExecClock is the virtual clock shared by a context tree.
	ExecClock = exec.Clock
	// ExecEvent is an observation emitted by instrumented components.
	ExecEvent = exec.Event
	// ExecHook receives ExecEvents.
	ExecHook = exec.Hook
)

// NewExecContext creates a root execution context from a seed. Use Child to
// scope it to a request and Stream to draw named deterministic randomness:
//
//	ctx := autoscale.NewExecContext(42)
//	rng := ctx.Child("req", 7).Stream("arrival")
func NewExecContext(seed int64) *ExecContext { return exec.NewRoot(seed) }
