package autoscale

import (
	"autoscale/internal/plan"
	"autoscale/internal/serve"
)

// Model-driven capacity planning above the routing tier: deterministic
// arrival-rate/service-time estimation fed from the metrics plane, an
// Erlang-C (M/M/c) occupancy model calibrated against measured histograms,
// gold/silver/best-effort SLO classes, and a slow actuation loop that
// resizes worker pools, in-flight budgets and fairness weights through the
// router's narrow setters. See internal/plan for full documentation;
// Fleet.ProvisionPlanner is the one-call path from a trained donor to a
// planned fleet.
type (
	// Planner closes the slow capacity loop over a Router.
	Planner = plan.Planner
	// PlannerConfig tunes estimation, model targets and actuation clamps.
	PlannerConfig = plan.Config
	// PlanDecision is one applied (or held) capacity decision.
	PlanDecision = plan.Decision
	// PlanStatus is the admin /plan document: latest decision plus
	// per-class SLO attainment.
	PlanStatus = plan.Status
	// PlanClassStatus is one SLO class's attainment row in /plan.
	PlanClassStatus = plan.ClassStatus
	// SLOClass is one service tier: latency target, fairness weight and
	// admission gate (the gate, not the target, decides shed priority).
	SLOClass = plan.Class
)

// DefaultSLOClasses returns the stock gold/silver/best-effort tiers.
func DefaultSLOClasses() []SLOClass { return plan.DefaultClasses() }

// ParseSLOClasses parses a "name:target[:weight[:maxqueue]];..." spec, the
// same grammar the autoscale-serve -slo-classes flag accepts.
func ParseSLOClasses(spec string) ([]SLOClass, error) { return plan.ParseClasses(spec) }

// SLOTenants maps SLO classes onto router fairness tenants (one per class,
// weighted by the class weight). RouterConfig.Tenants must include these for
// NewPlanner to accept the router.
func SLOTenants(classes []SLOClass) []RouterTenant { return plan.Tenants(classes) }

// NewPlanner wires a capacity planner over a running router. The planner
// applies each class's fairness weight and admission gate immediately, then
// recomputes capacity on every MaybeTick interval boundary.
func NewPlanner(rt *Router, cfg PlannerConfig) (*Planner, error) { return plan.New(rt, cfg) }

// ServePlannerAdmin binds the admin endpoint for a planned deployment: the
// router surface (merged metrics, /shards) plus /plan (latest decision and
// per-class SLO attainment) and autoscale_plan_* series on /metrics.
func ServePlannerAdmin(p *Planner, addr string) (*GatewayAdmin, error) {
	return serve.ServeAdminSource(p, addr)
}
