package autoscale

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"autoscale/internal/policy"
	"autoscale/internal/router"
	"autoscale/internal/serve"
)

// Fleet operationalizes the paper's learning-transfer result (Section VI-C):
// train one donor Q-table on a reference device, then provision warm-started
// engines for a heterogeneous fleet — each engine converges in a fraction of
// the from-scratch runs because the donor's energy-trend knowledge maps onto
// its action space.
type Fleet struct {
	mu    sync.Mutex
	donor *Engine
}

// NewFleet trains the donor engine on the named device with the paper's
// protocol (runsPerState epsilon-greedy runs per model and variance state;
// the paper uses 100 — budgets below the ~66-action space size leave the
// table half-explored and transfer poorly).
func NewFleet(donorDevice string, cfg EngineConfig, runsPerState int, seed int64) (*Fleet, error) {
	world, err := NewWorld(donorDevice, seed)
	if err != nil {
		return nil, err
	}
	donor, err := NewTrainedEngine(world, cfg, runsPerState, seed)
	if err != nil {
		return nil, fmt.Errorf("autoscale: fleet donor: %w", err)
	}
	return &Fleet{donor: donor}, nil
}

// FleetFromEngine wraps an already trained engine as the fleet donor.
func FleetFromEngine(donor *Engine) (*Fleet, error) {
	if donor == nil {
		return nil, fmt.Errorf("autoscale: nil donor engine")
	}
	return &Fleet{donor: donor}, nil
}

// Donor returns the fleet's donor engine.
func (f *Fleet) Donor() *Engine {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.donor
}

// Provision builds an engine for the named device, warm-started from the
// donor's Q-table (actions map by location/kind/precision and nearest
// relative DVFS position). The engine keeps learning online; call
// Agent().SetEpsilon(0) once converged to exploit greedily.
func (f *Fleet) Provision(device string, cfg EngineConfig, seed int64) (*Engine, error) {
	world, err := NewWorld(device, seed)
	if err != nil {
		return nil, err
	}
	engine, err := NewEngine(world, cfg)
	if err != nil {
		return nil, err
	}
	f.mu.Lock()
	donor := f.donor
	f.mu.Unlock()
	if err := engine.TransferFrom(donor); err != nil {
		return nil, fmt.Errorf("autoscale: fleet transfer to %s: %w", device, err)
	}
	return engine, nil
}

// ProvisionFromStore builds an engine for the named device, preferring real
// fleet experience from a policy checkpoint store over the donor: the
// device's own latest valid checkpoint first (a restarted device resumes
// where it left off), then the store's merged fleet policy for the engine's
// config hash (a brand-new device inherits the fleet's learning), and only
// when the store has neither — or holds incompatible tables — the classic
// donor transfer of Provision.
func (f *Fleet) ProvisionFromStore(device string, cfg EngineConfig, sink PolicySink, seed int64) (*Engine, error) {
	if sink == nil {
		return f.Provision(device, cfg, seed)
	}
	world, err := NewWorld(device, seed)
	if err != nil {
		return nil, err
	}
	engine, err := NewEngine(world, cfg)
	if err != nil {
		return nil, err
	}
	hash := engine.ConfigHash()
	for _, name := range []string{device, policy.FleetDevice(hash)} {
		ck, err := sink.Latest(name)
		if errors.Is(err, ErrNoPolicyCheckpoint) {
			continue
		}
		if err != nil {
			return nil, fmt.Errorf("autoscale: fleet provision %s: %w", device, err)
		}
		if ck.ConfigHash != hash {
			continue
		}
		if err := engine.RestoreQTable(ck.Snapshot); err != nil {
			return nil, fmt.Errorf("autoscale: fleet provision %s: %w", device, err)
		}
		return engine, nil
	}
	return f.Provision(device, cfg, seed)
}

// ProvisionGateway warm-starts one engine per named device (each seeded
// seed, seed+1, ...) and wraps them in a serving gateway — the one-call path
// from a trained donor to a fleet accepting traffic. Each name becomes one
// gateway worker, so the list must not repeat a name.
func (f *Fleet) ProvisionGateway(devices []string, cfg EngineConfig, gcfg GatewayConfig, seed int64) (*Gateway, error) {
	if len(devices) == 0 {
		return nil, fmt.Errorf("autoscale: gateway needs at least one device")
	}
	backends := make([]GatewayBackend, 0, len(devices))
	for i, device := range devices {
		engine, err := f.Provision(device, cfg, seed+int64(i))
		if err != nil {
			return nil, err
		}
		backends = append(backends, GatewayBackend{Device: device, Engine: engine})
	}
	return serve.New(backends, gcfg)
}

// ProvisionRouter stands up the cluster-scale routing tier in one call:
// device lanes are placed over `shards` gateway shards ("shard-0" ... ) by
// the router's consistent-hash/bounded-load placement (rebalanced so every
// shard starts with at least one lane), each lane gets a donor-warm-started
// engine (seeded seed, seed+1, ... in input order), each shard gets a copy
// of gcfg with its Name stamped, and the router is wired with an engine
// factory that rebuilds any lane's engine — same seed — when a dead shard's
// lanes re-home onto survivors. The router inherits gcfg's checkpoint store
// and fault injector when rcfg leaves them unset, so the cross-shard
// learning plane and shard-crash drills ride the same plumbing the gateways
// already use.
//
// Each devices entry is either a hardware name ("Mi8Pro") or a
// "lane=hardware" spec ("Mi8Pro-1=Mi8Pro"), so one physical device model can
// back many serving lanes — how a load test scales a two-model catalog to a
// four-shard fleet.
func (f *Fleet) ProvisionRouter(devices []string, shards int, cfg EngineConfig, gcfg GatewayConfig, rcfg RouterConfig, seed int64) (*Router, error) {
	if shards < 1 {
		return nil, fmt.Errorf("autoscale: router needs at least one shard")
	}
	if len(devices) < shards {
		return nil, fmt.Errorf("autoscale: %d devices cannot populate %d shards", len(devices), shards)
	}
	lanes := make([]string, 0, len(devices))
	hw := make(map[string]string, len(devices))
	seeds := make(map[string]int64, len(devices))
	for i, spec := range devices {
		lane, model := spec, spec
		if eq := strings.IndexByte(spec, '='); eq >= 0 {
			lane, model = spec[:eq], spec[eq+1:]
		}
		if lane == "" || model == "" {
			return nil, fmt.Errorf("autoscale: bad device spec %q (want name or lane=hardware)", spec)
		}
		if _, dup := seeds[lane]; dup {
			return nil, fmt.Errorf("autoscale: duplicate device lane %q", lane)
		}
		lanes = append(lanes, lane)
		hw[lane] = model
		seeds[lane] = seed + int64(i)
	}
	shardNames := make([]string, shards)
	for i := range shardNames {
		shardNames[i] = fmt.Sprintf("shard-%d", i)
	}

	homes := router.PlaceDevices(lanes, shardNames, rcfg.VNodes, rcfg.LoadFactor)
	rebalanceEmptyShards(homes, shardNames)

	byShard := make(map[string][]string, shards)
	for lane, shard := range homes {
		byShard[shard] = append(byShard[shard], lane)
	}
	gateways := make([]RouterShard, 0, shards)
	for _, name := range shardNames {
		devs := byShard[name]
		sort.Strings(devs)
		backends := make([]GatewayBackend, 0, len(devs))
		for _, lane := range devs {
			engine, err := f.Provision(hw[lane], cfg, seeds[lane])
			if err != nil {
				return nil, err
			}
			backends = append(backends, GatewayBackend{Device: lane, Engine: engine})
		}
		shardCfg := gcfg
		shardCfg.Name = name
		gw, err := serve.New(backends, shardCfg)
		if err != nil {
			return nil, fmt.Errorf("autoscale: shard %s: %w", name, err)
		}
		gateways = append(gateways, RouterShard{Name: name, Gateway: gw})
	}

	if rcfg.EngineFactory == nil {
		rcfg.EngineFactory = func(lane string) (*Engine, error) {
			s, ok := seeds[lane]
			if !ok {
				return nil, fmt.Errorf("autoscale: unknown device %q", lane)
			}
			return f.Provision(hw[lane], cfg, s)
		}
	}
	if rcfg.Checkpoints == nil {
		rcfg.Checkpoints = gcfg.Checkpoints
	}
	if rcfg.Faults == nil {
		rcfg.Faults = gcfg.Faults
	}
	if rcfg.ShardFactory == nil {
		// Rebuild a drained/dead shard's gateway for ReviveShard: each lane
		// gets its original seed back (determinism) and a fresh donor
		// transfer, then serve.New warm-starts from the checkpoint store —
		// so a revived shard resumes from the fleet's persisted learning,
		// not from scratch.
		rcfg.ShardFactory = func(name string, devs []string) (*Gateway, error) {
			backends := make([]GatewayBackend, 0, len(devs))
			for _, lane := range devs {
				model, ok := hw[lane]
				if !ok {
					return nil, fmt.Errorf("autoscale: unknown device %q", lane)
				}
				engine, err := f.Provision(model, cfg, seeds[lane])
				if err != nil {
					return nil, err
				}
				backends = append(backends, GatewayBackend{Device: lane, Engine: engine})
			}
			shardCfg := gcfg
			shardCfg.Name = name
			if shardCfg.Checkpoints == nil {
				shardCfg.Checkpoints = rcfg.Checkpoints
			}
			if shardCfg.Faults == nil {
				shardCfg.Faults = rcfg.Faults
			}
			return serve.New(backends, shardCfg)
		}
	}
	return router.New(gateways, rcfg)
}

// ProvisionPlanner stands up a planned fleet in one call: ProvisionRouter
// builds the sharded tier (with the planner's SLO classes merged into the
// fairness tenants, so class names route without extra configuration), then
// a capacity planner is wired over it. The planner inherits the router's
// fault injector when pcfg leaves it unset, so scheduled load surges inform
// its lookahead. Drive it by calling Planner.MaybeTick with each request's
// virtual arrival time.
func (f *Fleet) ProvisionPlanner(devices []string, shards int, cfg EngineConfig, gcfg GatewayConfig, rcfg RouterConfig, pcfg PlannerConfig, seed int64) (*Planner, error) {
	classes := pcfg.Classes
	if len(classes) == 0 {
		classes = DefaultSLOClasses()
		pcfg.Classes = classes
	}
	have := make(map[string]bool, len(rcfg.Tenants))
	for _, t := range rcfg.Tenants {
		have[t.Name] = true
	}
	for _, t := range SLOTenants(classes) {
		if !have[t.Name] {
			rcfg.Tenants = append(rcfg.Tenants, t)
		}
	}
	rt, err := f.ProvisionRouter(devices, shards, cfg, gcfg, rcfg, seed)
	if err != nil {
		return nil, err
	}
	if pcfg.Faults == nil {
		pcfg.Faults = rcfg.Faults
	}
	p, err := NewPlanner(rt, pcfg)
	if err != nil {
		rt.Shutdown(context.Background())
		return nil, fmt.Errorf("autoscale: planner: %w", err)
	}
	return p, nil
}

// rebalanceEmptyShards patches a placement so no shard starts empty: each
// empty shard (in name order) steals one device from the currently
// most-loaded shard (deterministic tiebreaks), preserving the placement's
// purity as a function of the name sets.
func rebalanceEmptyShards(homes map[string]string, shardNames []string) {
	counts := make(map[string]int, len(shardNames))
	for _, s := range shardNames {
		counts[s] = 0
	}
	for _, s := range homes {
		counts[s]++
	}
	sortedNames := append([]string(nil), shardNames...)
	sort.Strings(sortedNames)
	for _, empty := range sortedNames {
		if counts[empty] > 0 {
			continue
		}
		donor := ""
		for _, s := range sortedNames {
			if donor == "" || counts[s] > counts[donor] {
				donor = s
			}
		}
		if donor == "" || counts[donor] < 2 {
			continue
		}
		// Steal the last (sorted) device homed on the donor.
		victim := ""
		for dev, s := range homes {
			if s == donor && dev > victim {
				victim = dev
			}
		}
		if victim == "" {
			continue
		}
		homes[victim] = empty
		counts[donor]--
		counts[empty]++
	}
}
