package autoscale

import (
	"errors"
	"fmt"
	"sync"

	"autoscale/internal/policy"
	"autoscale/internal/serve"
)

// Fleet operationalizes the paper's learning-transfer result (Section VI-C):
// train one donor Q-table on a reference device, then provision warm-started
// engines for a heterogeneous fleet — each engine converges in a fraction of
// the from-scratch runs because the donor's energy-trend knowledge maps onto
// its action space.
type Fleet struct {
	mu    sync.Mutex
	donor *Engine
}

// NewFleet trains the donor engine on the named device with the paper's
// protocol (runsPerState epsilon-greedy runs per model and variance state;
// the paper uses 100 — budgets below the ~66-action space size leave the
// table half-explored and transfer poorly).
func NewFleet(donorDevice string, cfg EngineConfig, runsPerState int, seed int64) (*Fleet, error) {
	world, err := NewWorld(donorDevice, seed)
	if err != nil {
		return nil, err
	}
	donor, err := NewTrainedEngine(world, cfg, runsPerState, seed)
	if err != nil {
		return nil, fmt.Errorf("autoscale: fleet donor: %w", err)
	}
	return &Fleet{donor: donor}, nil
}

// FleetFromEngine wraps an already trained engine as the fleet donor.
func FleetFromEngine(donor *Engine) (*Fleet, error) {
	if donor == nil {
		return nil, fmt.Errorf("autoscale: nil donor engine")
	}
	return &Fleet{donor: donor}, nil
}

// Donor returns the fleet's donor engine.
func (f *Fleet) Donor() *Engine {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.donor
}

// Provision builds an engine for the named device, warm-started from the
// donor's Q-table (actions map by location/kind/precision and nearest
// relative DVFS position). The engine keeps learning online; call
// Agent().SetEpsilon(0) once converged to exploit greedily.
func (f *Fleet) Provision(device string, cfg EngineConfig, seed int64) (*Engine, error) {
	world, err := NewWorld(device, seed)
	if err != nil {
		return nil, err
	}
	engine, err := NewEngine(world, cfg)
	if err != nil {
		return nil, err
	}
	f.mu.Lock()
	donor := f.donor
	f.mu.Unlock()
	if err := engine.TransferFrom(donor); err != nil {
		return nil, fmt.Errorf("autoscale: fleet transfer to %s: %w", device, err)
	}
	return engine, nil
}

// ProvisionFromStore builds an engine for the named device, preferring real
// fleet experience from a policy checkpoint store over the donor: the
// device's own latest valid checkpoint first (a restarted device resumes
// where it left off), then the store's merged fleet policy for the engine's
// config hash (a brand-new device inherits the fleet's learning), and only
// when the store has neither — or holds incompatible tables — the classic
// donor transfer of Provision.
func (f *Fleet) ProvisionFromStore(device string, cfg EngineConfig, sink PolicySink, seed int64) (*Engine, error) {
	if sink == nil {
		return f.Provision(device, cfg, seed)
	}
	world, err := NewWorld(device, seed)
	if err != nil {
		return nil, err
	}
	engine, err := NewEngine(world, cfg)
	if err != nil {
		return nil, err
	}
	hash := engine.ConfigHash()
	for _, name := range []string{device, policy.FleetDevice(hash)} {
		ck, err := sink.Latest(name)
		if errors.Is(err, ErrNoPolicyCheckpoint) {
			continue
		}
		if err != nil {
			return nil, fmt.Errorf("autoscale: fleet provision %s: %w", device, err)
		}
		if ck.ConfigHash != hash {
			continue
		}
		if err := engine.RestoreQTable(ck.Snapshot); err != nil {
			return nil, fmt.Errorf("autoscale: fleet provision %s: %w", device, err)
		}
		return engine, nil
	}
	return f.Provision(device, cfg, seed)
}

// ProvisionGateway warm-starts one engine per named device (each seeded
// seed, seed+1, ...) and wraps them in a serving gateway — the one-call path
// from a trained donor to a fleet accepting traffic. Each name becomes one
// gateway worker, so the list must not repeat a name.
func (f *Fleet) ProvisionGateway(devices []string, cfg EngineConfig, gcfg GatewayConfig, seed int64) (*Gateway, error) {
	if len(devices) == 0 {
		return nil, fmt.Errorf("autoscale: gateway needs at least one device")
	}
	backends := make([]GatewayBackend, 0, len(devices))
	for i, device := range devices {
		engine, err := f.Provision(device, cfg, seed+int64(i))
		if err != nil {
			return nil, err
		}
		backends = append(backends, GatewayBackend{Device: device, Engine: engine})
	}
	return serve.New(backends, gcfg)
}
