//go:build !race

package autoscale

// raceEnabled reports whether the race detector instruments this build.
// The zero-alloc regression guard skips under -race: detector shadow
// memory makes otherwise allocation-free paths allocate.
const raceEnabled = false
