package autoscale

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"
)

func TestNewWorldDevices(t *testing.T) {
	for _, name := range DeviceNames() {
		w, err := NewWorld(name, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if w.Device.Name != name {
			t.Errorf("world device = %s, want %s", w.Device.Name, name)
		}
	}
	if _, err := NewWorld("iPhone", 1); err == nil {
		t.Error("unknown device should fail")
	}
}

func TestModelsAndLookup(t *testing.T) {
	if len(Models()) != 10 {
		t.Errorf("Models() = %d, want the Table III zoo", len(Models()))
	}
	m, err := Model("MobileBERT")
	if err != nil || m.Task != Translation {
		t.Fatalf("Model lookup: %v, %v", m, err)
	}
	if _, err := Model("GPT-3"); err == nil {
		t.Error("unknown model should fail")
	}
}

func TestEngineLifecycle(t *testing.T) {
	w, err := NewWorld(Mi8Pro, 1)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(w, DefaultEngineConfig())
	if err != nil {
		t.Fatal(err)
	}
	env, err := NewEnvironment(EnvS1, 1)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := Model("MobileNet v1")
	for i := 0; i < 30; i++ {
		d, err := e.RunInference(m, env.Sample())
		if err != nil {
			t.Fatal(err)
		}
		if d.Measurement.EnergyJ <= 0 {
			t.Fatal("bad decision")
		}
	}
}

func TestTrainAndPolicies(t *testing.T) {
	w, _ := NewWorld(GalaxyS10e, 2)
	cfg := DefaultEngineConfig()
	e, err := NewEngine(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	models := Models()[:2]
	if err := Train(e, models, 2, 3); err != nil {
		t.Fatal(err)
	}
	pol := AsPolicy(e)
	env, _ := NewEnvironment(EnvD1, 2)
	if _, err := pol.Run(models[0], env.Sample()); err != nil {
		t.Fatal(err)
	}
	if got := len(Baselines(w, NonStreaming)); got != 5 {
		t.Errorf("Baselines = %d", got)
	}
	if got := len(PriorWork(w, NonStreaming)); got != 2 {
		t.Errorf("PriorWork = %d", got)
	}
	if Opt(w, NonStreaming).Name() != "Opt" {
		t.Error("Opt policy name wrong")
	}
}

func TestSaveLoadQTable(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "table.json")
	w, _ := NewWorld(Mi8Pro, 4)
	e, err := NewEngine(w, DefaultEngineConfig())
	if err != nil {
		t.Fatal(err)
	}
	m, _ := Model("Inception v1")
	env, _ := NewEnvironment(EnvS1, 4)
	for i := 0; i < 20; i++ {
		e.RunInference(m, env.Sample())
	}
	if err := SaveQTable(e, path); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal("file not written")
	}
	e2, err := NewEngine(w, DefaultEngineConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := LoadQTable(e2, path); err != nil {
		t.Fatal(err)
	}
	if len(e2.Agent().States()) != len(e.Agent().States()) {
		t.Error("restored table differs")
	}
	if err := LoadQTable(e2, filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file should fail")
	}
}

func TestQoSForAPI(t *testing.T) {
	bert, _ := Model("MobileBERT")
	if QoSFor(bert, NonStreaming) != 0.100 {
		t.Error("translation QoS wrong")
	}
	mb, _ := Model("MobileNet v1")
	if QoSFor(mb, NonStreaming) != 0.050 {
		t.Error("vision QoS wrong")
	}
	if QoSFor(mb, Streaming) >= 0.050 {
		t.Error("streaming QoS must be tighter")
	}
}

func TestExperimentRegistryAPI(t *testing.T) {
	ids := Experiments()
	if len(ids) == 0 {
		t.Fatal("no experiments registered")
	}
	tab, err := RunExperiment("tableIII", QuickOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 10 {
		t.Error("tableIII rows wrong")
	}
	if _, err := RunExperiment("nope", QuickOptions(1)); err == nil {
		t.Error("unknown experiment should fail")
	}
}

func TestNewTrainedEngineAPI(t *testing.T) {
	if testing.Short() {
		t.Skip("training loop skipped in -short mode")
	}
	w, _ := NewWorld(MotoXForce, 5)
	e, err := NewTrainedEngine(w, DefaultEngineConfig(), 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Agent().States()) == 0 {
		t.Error("trained engine has no states")
	}
}

func TestRunSessionAPI(t *testing.T) {
	w, err := NewWorld(Mi8Pro, 6)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := Model("MobileNet v1")
	env, _ := NewEnvironment(EnvS1, 6)
	b, err := NewBattery(3000, 3.85)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := RunSession(Opt(w, NonStreaming), SessionConfig{
		Model:     m,
		Env:       env,
		Arrival:   Periodic{PeriodS: 0.2},
		DurationS: 10,
		IdleW:     1.0,
		Seed:      6,
	}, b)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Inferences == 0 || stats.BatteryDrainedJ <= 0 {
		t.Errorf("session stats incomplete: %+v", stats)
	}
	if b.SoC() >= 1 {
		t.Error("battery must have drained")
	}
}

func TestTracedPolicyAPI(t *testing.T) {
	w, _ := NewWorld(Mi8Pro, 7)
	e, err := NewEngine(w, DefaultEngineConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	tw := NewTraceWriter(&buf)
	p := TracedPolicy(e, tw)
	m, _ := Model("Inception v1")
	env, _ := NewEnvironment(EnvS1, 7)
	for i := 0; i < 10; i++ {
		if _, err := p.Run(m, env.Sample()); err != nil {
			t.Fatal(err)
		}
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 10 {
		t.Fatalf("trace records = %d", len(recs))
	}
	sum := SummarizeTrace(recs)
	if sum.Records != 10 || sum.TotalEnergyJ <= 0 {
		t.Errorf("summary incomplete: %+v", sum)
	}
}

func TestFleetProvision(t *testing.T) {
	cfg := DefaultEngineConfig()
	fleet, err := NewFleet(Mi8Pro, cfg, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if fleet.Donor() == nil {
		t.Fatal("fleet has no donor")
	}
	for _, dev := range []string{GalaxyS10e, MotoXForce} {
		e, err := fleet.Provision(dev, cfg, 9)
		if err != nil {
			t.Fatalf("%s: %v", dev, err)
		}
		if len(e.Agent().States()) == 0 {
			t.Errorf("%s: transferred engine has no states", dev)
		}
		m, _ := Model("MobileNet v1")
		env, _ := NewEnvironment(EnvS1, 9)
		if _, err := e.RunInference(m, env.Sample()); err != nil {
			t.Fatalf("%s: %v", dev, err)
		}
	}
	if _, err := fleet.Provision("iPhone", cfg, 1); err == nil {
		t.Error("unknown device should fail")
	}
	if _, err := FleetFromEngine(nil); err == nil {
		t.Error("nil donor should fail")
	}
	wrapped, err := FleetFromEngine(fleet.Donor())
	if err != nil {
		t.Fatal(err)
	}
	if wrapped.Donor() != fleet.Donor() {
		t.Error("wrapped donor mismatch")
	}
}

func TestProvisionGatewayAPI(t *testing.T) {
	cfg := DefaultEngineConfig()
	fleet, err := NewFleet(Mi8Pro, cfg, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	gw, err := fleet.ProvisionGateway([]string{GalaxyS10e, MotoXForce}, cfg,
		GatewayConfig{QueueDepth: 16, FailoverLocal: true}, 9)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := Model("MobileNet v1")
	env, _ := NewEnvironment(EnvS1, 9)
	for i := 0; i < 20; i++ {
		r, err := gw.Do(Request{Model: m, Conditions: env.Sample()})
		if err != nil {
			t.Fatal(err)
		}
		if r.Status != StatusServed || r.Decision.Measurement.EnergyJ <= 0 {
			t.Fatalf("response %d: %+v", i, r)
		}
	}
	snap := gw.Snapshot()
	if snap.Served != 20 || snap.Accounted() != snap.Submitted {
		t.Fatalf("snapshot: %+v", snap)
	}
	if err := gw.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := gw.Submit(Request{Model: m}); err != ErrGatewayClosed {
		t.Fatalf("submit after shutdown: %v", err)
	}
	if _, err := fleet.ProvisionGateway(nil, cfg, GatewayConfig{}, 1); err == nil {
		t.Error("empty device list should fail")
	}
	if _, err := fleet.ProvisionGateway([]string{"iPhone"}, cfg, GatewayConfig{}, 1); err == nil {
		t.Error("unknown device should fail")
	}
}
